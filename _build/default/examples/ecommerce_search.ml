(* End-to-end e-commerce scenario (the paper's motivating setting).

   A catalog of items carries latent properties that sellers did not
   record ("wooden" is visible in the photo but missing from the
   metadata), so conjunctive search queries miss matching items.  We:

   1. generate a catalog with partially recorded attributes;
   2. derive a query workload (utilities follow popularity) and a cost
      model (rarer conjunctions need more labelled examples);
   3. ask A^BCC which classifiers to construct within the budget;
   4. "train" the chosen classifiers in simulation, deploy them, and
      measure how much the result sets of the covered queries grow —
      the paper's Section 6.2 reports growth above 200% on the queries
      analysts targeted.

   Run with: dune exec examples/ecommerce_search.exe *)

module Catalog = Bcc_catalog.Catalog
module Pipeline = Bcc_catalog.Pipeline
module Search = Bcc_catalog.Search
module Instance = Bcc_core.Instance

let () =
  let catalog = Catalog.generate ~seed:2024 () in
  Format.printf "catalog: %d items over %d properties@." (Catalog.num_items catalog)
    (Catalog.num_properties catalog);
  (* How much of the truth does the search engine see initially? *)
  let sample_query = Bcc_core.Propset.of_list [ 0; 1 ] in
  let truth = List.length (Catalog.ground_truth catalog sample_query) in
  let visible = List.length (Catalog.explicit_matches catalog sample_query) in
  Format.printf "sample query {0,1}: %d relevant items, %d returned pre-classifier@."
    truth visible;
  let params = { Pipeline.default_workload with num_queries = 400; budget = 200.0 } in
  let inst = Pipeline.instance_of_catalog ~params catalog ~seed:7 in
  Format.printf "workload: %a@." Instance.pp_summary inst;
  let report = Pipeline.run ~params catalog ~seed:7 in
  Format.printf "@.%a@." Pipeline.pp_report report;
  Format.printf
    "@.(the paper reports result-set growth above 2x on the targeted queries;@ the \
     simulation reproduces that shape)@."
