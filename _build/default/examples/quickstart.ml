(* Quickstart: the paper's running example (Example 1.1 / Example 2.1).

   An e-commerce platform sees the queries "round wooden table",
   "wooden table" and "round table".  Classifiers for various property
   conjunctions have different construction costs; the "wooden table"
   classifier already exists (cost 0) and a context-free "round wooden"
   classifier is considered impractical (infinite cost).  We ask A^BCC
   which classifiers to build under three budgets — reproducing the
   optimal solutions of Figure 1.

   Run with: dune exec examples/quickstart.exe *)

module Instance = Bcc_core.Instance
module Propset = Bcc_core.Propset
module Solution = Bcc_core.Solution
module Solver = Bcc_core.Solver
module Symtab = Bcc_core.Symtab

let () =
  let names = Symtab.create () in
  let p name = Symtab.intern names name in
  let round = p "round" and wooden = p "wooden" and table = p "table" in
  let ps = Propset.of_list in
  (* Queries and how much the business cares about each (Figure 1). *)
  let queries =
    [|
      (ps [ round; wooden; table ], 8.0);
      (ps [ round; table ], 1.0);
      (ps [ round; wooden ], 2.0);
    |]
  in
  (* Classifier construction costs, as estimated by analysts. *)
  let cost c =
    let is l = Propset.equal c (ps l) in
    if is [ round ] then 5.0
    else if is [ wooden ] then 3.0
    else if is [ table ] then 3.0
    else if is [ round; wooden; table ] then 3.0
    else if is [ round; table ] then 4.0
    else if is [ wooden; table ] then 0.0 (* already constructed *)
    else if is [ round; wooden ] then infinity (* impractical *)
    else infinity
  in
  List.iter
    (fun budget ->
      let inst = Instance.create ~name:"quickstart" ~names ~budget ~queries ~cost () in
      let sol = Solver.solve inst in
      Format.printf "@[<v>budget %.0f:@;<1 2>%a@]@.@." budget
        (Solution.pp ~names) sol)
    [ 3.0; 4.0; 11.0 ]
