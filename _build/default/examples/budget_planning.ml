(* Budget planning on a realistic workload (the paper's 6.2 insights).

   Business analysts periodically allocate a budget for classifier
   construction.  This example sweeps budgets over a Private-like
   workload and shows the diminishing-returns curve the paper
   highlights: a modest budget already captures most of the utility
   (the paper: 75% of the total utility at roughly half of the
   cover-everything budget), and GMC3 answers the inverse question —
   what is the cheapest way to reach a utility goal?

   Run with: dune exec examples/budget_planning.exe *)

module Instance = Bcc_core.Instance
module Solution = Bcc_core.Solution
module Solver = Bcc_core.Solver
module Gmc3 = Bcc_core.Gmc3
module Texttable = Bcc_util.Texttable

let () =
  let inst =
    Bcc_data.Private_like.generate
      ~params:{ Bcc_data.Private_like.default_params with num_queries = 2000; num_anchors = 250 }
      ~seed:3 ~budget:0.0 ()
  in
  let total = Instance.total_utility inst in
  Format.printf "%a@.@." Instance.pp_summary inst;
  (match Gmc3.full_cover_cost inst with
  | Some c -> Format.printf "budget needed to cover every query (MC3): %.0f@.@." c
  | None -> Format.printf "some queries cannot be covered at any budget@.@.");
  let table = Texttable.create [ "budget"; "utility"; "% of total" ] in
  List.iter
    (fun budget ->
      let sol = Solver.solve (Instance.with_budget inst budget) in
      Texttable.add_row table
        [
          Printf.sprintf "%.0f" budget;
          Printf.sprintf "%.0f" sol.Solution.utility;
          Printf.sprintf "%.1f%%" (100.0 *. sol.Solution.utility /. total);
        ])
    [ 250.0; 500.0; 1000.0; 2000.0; 4000.0 ];
  Texttable.print table;
  (* The inverse question: cheapest plan for a utility goal. *)
  let target = Float.round (0.75 *. total) in
  let r = Gmc3.solve inst ~target in
  Format.printf "@.cheapest plan reaching 75%% of total utility (%.0f): cost %.0f (%d classifiers)@."
    target r.Gmc3.solution.Solution.cost
    (List.length r.Gmc3.solution.Solution.classifiers)
