examples/bang_for_buck.mli:
