examples/ecommerce_search.ml: Bcc_catalog Bcc_core Format List
