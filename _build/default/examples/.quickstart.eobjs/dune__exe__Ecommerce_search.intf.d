examples/ecommerce_search.mli:
