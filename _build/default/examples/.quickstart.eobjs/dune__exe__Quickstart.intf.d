examples/quickstart.mli:
