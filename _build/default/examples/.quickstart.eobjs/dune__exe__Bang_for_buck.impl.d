examples/bang_for_buck.ml: Bcc_core Bcc_data Bcc_util Format List Printf
