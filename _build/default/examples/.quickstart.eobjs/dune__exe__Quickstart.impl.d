examples/quickstart.ml: Bcc_core Format List
