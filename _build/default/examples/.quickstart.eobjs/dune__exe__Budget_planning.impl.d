examples/budget_planning.ml: Bcc_core Bcc_data Bcc_util Float Format List Printf
