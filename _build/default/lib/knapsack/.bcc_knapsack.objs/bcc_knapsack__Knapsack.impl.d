lib/knapsack/knapsack.ml: Array Bytes Float List
