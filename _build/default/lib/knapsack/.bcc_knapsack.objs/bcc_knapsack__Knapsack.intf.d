lib/knapsack/knapsack.mli:
