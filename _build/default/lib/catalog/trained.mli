(** Simulated binary classifiers.

    The paper's classifiers are trained on human-labelled examples; cost
    is the labelling effort and a classifier is deployed once it reaches
    95 % accuracy on a test set (Section 6.2).  This simulation maps a
    construction cost to an accuracy via a saturating learning curve and
    applies the classifier to every item with i.i.d. errors, which is
    enough to exercise the full construct-then-search code path. *)

type t

val construct :
  seed:int -> props:Bcc_core.Propset.t -> cost:float -> accuracy_floor:float -> t
(** [accuracy_floor] is the accuracy a zero-cost (pre-existing)
    classifier is assumed to have; paid classifiers follow
    [min 0.995 (floor + (1-floor) * cost/(cost+2))]. *)

val props : t -> Bcc_core.Propset.t
val accuracy : t -> float

val predict : t -> Catalog.t -> int -> bool
(** Does the conjunction hold for the item?  Correct with probability
    {!accuracy}, deterministic per (classifier, item). *)
