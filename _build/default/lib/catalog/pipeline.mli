(** End-to-end pipeline: workload -> BCC -> classifier construction ->
    search quality (the Section 6.2 "preliminary end-to-end results"
    experiment).

    Builds a BCC instance from the catalog (query utilities follow
    popularity; classifier costs follow a labelled-examples model priced
    by the rarity of the conjunction), solves it with a pluggable
    solver, constructs the selected classifiers in simulation, deploys
    them, and reports the per-query result-set growth and recall before
    and after. *)

type workload_params = {
  num_queries : int;
  max_length : int;
  budget : float;
  cost_scale : float;  (** labelled-examples-per-classifier scale *)
}

val default_workload : workload_params

val instance_of_catalog :
  ?params:workload_params -> Catalog.t -> seed:int -> Bcc_core.Instance.t
(** Queries are drawn from co-occurring true-property conjunctions (so
    ground-truth result sets are non-empty); a classifier's cost grows
    with the rarity of its conjunction (rarer positives need more
    labelled data). *)

type report = {
  selected : Bcc_core.Solution.t;
  queries_covered : int;
  avg_growth : float;  (** mean result-set growth over covered queries with finite growth *)
  median_growth : float;
  avg_recall_before : float;
  avg_recall_after : float;
  avg_precision_after : float;
}

val run :
  ?params:workload_params ->
  ?solve:(Bcc_core.Instance.t -> Bcc_core.Solution.t) ->
  Catalog.t ->
  seed:int ->
  report
(** [solve] defaults to {!Bcc_core.Solver.solve}. *)

val pp_report : Format.formatter -> report -> unit
