module Propset = Bcc_core.Propset

type t = {
  catalog : Catalog.t;
  mutable deployed : Trained.t list;
  (* item -> positively predicted classifier property sets *)
  positive : Propset.t list array;
}

let create catalog =
  { catalog; deployed = []; positive = Array.make (Catalog.num_items catalog) [] }

let deploy t cl =
  t.deployed <- cl :: t.deployed;
  for item = 0 to Catalog.num_items t.catalog - 1 do
    if Trained.predict cl t.catalog item then
      t.positive.(item) <- Trained.props cl :: t.positive.(item)
  done

let item_matches t item q =
  (* Evidence: explicit properties (usable one by one) and positive
     classifier conjunctions contained in the query. *)
  let explicit = Catalog.explicit_props t.catalog item in
  let covered = ref (Propset.inter explicit q) in
  List.iter
    (fun props -> if Propset.subset props q then covered := Propset.union !covered props)
    t.positive.(item);
  Propset.equal !covered q

let results t q =
  let out = ref [] in
  for item = Catalog.num_items t.catalog - 1 downto 0 do
    if item_matches t item q then out := item :: !out
  done;
  !out

type quality = {
  returned : int;
  relevant : int;
  true_positives : int;
  recall : float;
  precision : float;
  growth : float;
}

let evaluate t q =
  let returned_items = results t q in
  let truth = Catalog.ground_truth t.catalog q in
  let truth_tbl = Hashtbl.create (List.length truth) in
  List.iter (fun i -> Hashtbl.replace truth_tbl i ()) truth;
  let tp = List.length (List.filter (Hashtbl.mem truth_tbl) returned_items) in
  let returned = List.length returned_items in
  let relevant = List.length truth in
  let baseline = List.length (Catalog.explicit_matches t.catalog q) in
  {
    returned;
    relevant;
    true_positives = tp;
    recall = (if relevant = 0 then 1.0 else float_of_int tp /. float_of_int relevant);
    precision = (if returned = 0 then 1.0 else float_of_int tp /. float_of_int returned);
    growth =
      (if baseline = 0 then if returned > 0 then infinity else 1.0
       else float_of_int returned /. float_of_int baseline);
  }
