(** The conjunctive search engine over a catalog, with classifier-derived
    evidence.

    An item matches a query when the query's properties are covered by
    the item's {e evidence}: its explicit properties plus the property
    conjunctions asserted by constructed classifiers that predicted
    positive — exactly the coverage semantics of the BCC model (a set of
    classifiers contained in the query whose union, together with the
    recorded properties, reaches the whole query). *)

type t

val create : Catalog.t -> t
val deploy : t -> Trained.t -> unit
(** Apply a constructed classifier to the whole catalog (predictions are
    cached). *)

val results : t -> Bcc_core.Propset.t -> int list
(** Result set of a query given current evidence. *)

type quality = {
  returned : int;
  relevant : int;  (** ground-truth result-set size *)
  true_positives : int;
  recall : float;
  precision : float;
  growth : float;  (** returned / baseline explicit-only result size (inf when baseline 0) *)
}

val evaluate : t -> Bcc_core.Propset.t -> quality
