lib/catalog/search.mli: Bcc_core Catalog Trained
