lib/catalog/pipeline.ml: Array Bcc_core Bcc_util Catalog Float Format List Search Trained
