lib/catalog/pipeline.mli: Bcc_core Catalog Format
