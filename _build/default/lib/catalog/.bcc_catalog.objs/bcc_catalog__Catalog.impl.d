lib/catalog/catalog.ml: Array Bcc_core Bcc_util Hashtbl List
