lib/catalog/catalog.mli: Bcc_core
