lib/catalog/search.ml: Array Bcc_core Catalog Hashtbl List Trained
