lib/catalog/trained.ml: Bcc_core Bcc_util Catalog
