lib/catalog/trained.mli: Bcc_core Catalog
