module Propset = Bcc_core.Propset
module Rng = Bcc_util.Rng

type t = { props : Propset.t; accuracy : float; noise_seed : int }

let construct ~seed ~props ~cost ~accuracy_floor =
  let accuracy =
    if cost <= 0.0 then max accuracy_floor 0.95
    else min 0.995 (accuracy_floor +. ((1.0 -. accuracy_floor) *. (cost /. (cost +. 2.0))))
  in
  { props; accuracy; noise_seed = seed lxor (Propset.hash props * 7919) }

let props t = t.props
let accuracy t = t.accuracy

let predict t catalog item =
  let truth = Propset.subset t.props (Catalog.true_props catalog item) in
  let rng = Rng.create (t.noise_seed lxor (item * 0x2545F)) in
  if Rng.float rng 1.0 < t.accuracy then truth else not truth
