module Propset = Bcc_core.Propset
module Rng = Bcc_util.Rng
module Zipf = Bcc_util.Zipf

type t = {
  true_props : Propset.t array;
  explicit_props : Propset.t array;
  num_properties : int;
  by_true_prop : int list array; (* property -> items truly having it *)
  by_explicit_prop : int list array;
}

type params = {
  num_items : int;
  num_properties : int;
  props_per_item_lo : int;
  props_per_item_hi : int;
  visibility : float;
}

let default_params =
  {
    num_items = 20_000;
    num_properties = 400;
    props_per_item_lo = 3;
    props_per_item_hi = 8;
    visibility = 0.45;
  }

let generate ?(params = default_params) ~seed () =
  let rng = Rng.create seed in
  let zipf = Zipf.create ~s:0.8 params.num_properties in
  let true_props =
    Array.init params.num_items (fun _ ->
        let k = Rng.int_in rng params.props_per_item_lo params.props_per_item_hi in
        let seen = Hashtbl.create 8 in
        let rec draw acc n =
          if n = 0 then acc
          else begin
            let p = Zipf.sample zipf rng in
            if Hashtbl.mem seen p then draw acc n
            else begin
              Hashtbl.add seen p ();
              draw (p :: acc) (n - 1)
            end
          end
        in
        Propset.of_list (draw [] k))
  in
  let explicit_props =
    Array.map
      (fun props ->
        Propset.of_list
          (List.filter (fun _ -> Rng.float rng 1.0 < params.visibility)
             (Propset.to_list props)))
      true_props
  in
  let index props_of =
    let idx = Array.make params.num_properties [] in
    Array.iteri
      (fun item props -> Propset.iter (fun p -> idx.(p) <- item :: idx.(p)) props)
      props_of;
    Array.map List.rev idx
  in
  {
    true_props;
    explicit_props;
    num_properties = params.num_properties;
    by_true_prop = index true_props;
    by_explicit_prop = index explicit_props;
  }

let num_items (t : t) = Array.length t.true_props
let num_properties (t : t) = t.num_properties
let true_props (t : t) i = t.true_props.(i)
let explicit_props (t : t) i = t.explicit_props.(i)

let matches index props_of (t : t) q =
  match Propset.to_list q with
  | [] -> []
  | p0 :: _ when p0 >= t.num_properties -> []
  | p0 :: _ ->
      List.filter (fun item -> Propset.subset q (props_of t item)) (index t p0)

let ground_truth t q = matches (fun t p -> t.by_true_prop.(p)) true_props t q
let explicit_matches t q = matches (fun t p -> t.by_explicit_prop.(p)) explicit_props t q
