(** An in-memory e-commerce item catalog with latent attributes.

    The paper's motivating setting (Section 1): sellers upload items
    whose true properties are only partially recorded — "wooden" is
    evident in the photo but absent from the metadata — so conjunctive
    search queries miss matching items until classifiers derive the
    missing values.  This substrate simulates that world for the
    end-to-end pipeline and examples:

    - every item has a set of {e true} properties;
    - only a fraction (the visibility) is {e explicit} (recorded);
    - the search engine initially filters on explicit properties only. *)

type t

type params = {
  num_items : int;
  num_properties : int;
  props_per_item_lo : int;
  props_per_item_hi : int;
  visibility : float;  (** probability that a true property is recorded *)
}

val default_params : params

val generate : ?params:params -> seed:int -> unit -> t

val num_items : t -> int
val num_properties : t -> int
val true_props : t -> int -> Bcc_core.Propset.t
val explicit_props : t -> int -> Bcc_core.Propset.t

val ground_truth : t -> Bcc_core.Propset.t -> int list
(** Items whose {e true} properties contain the query — the ideal result
    set. *)

val explicit_matches : t -> Bcc_core.Propset.t -> int list
(** Items matching on explicit (recorded) properties only — what the
    search engine returns before any classifier is constructed. *)
