module Propset = Bcc_core.Propset
module Instance = Bcc_core.Instance
module Solution = Bcc_core.Solution
module Cover = Bcc_core.Cover
module Rng = Bcc_util.Rng

type workload_params = {
  num_queries : int;
  max_length : int;
  budget : float;
  cost_scale : float;
}

let default_workload =
  { num_queries = 300; max_length = 3; budget = 120.0; cost_scale = 4.0 }

let instance_of_catalog ?(params = default_workload) catalog ~seed =
  let rng = Rng.create seed in
  let n_items = Catalog.num_items catalog in
  (* Draw queries from true-property subsets of random items, so every
     query has a non-empty ideal result set. *)
  let queries = ref [] in
  let seen = Propset.Tbl.create params.num_queries in
  let attempts = ref 0 in
  while List.length !queries < params.num_queries && !attempts < 50 * params.num_queries do
    incr attempts;
    let item = Rng.int rng n_items in
    let props = Propset.to_array (Catalog.true_props catalog item) in
    if Array.length props > 0 then begin
      let len = min (1 + Rng.int rng params.max_length) (Array.length props) in
      let pick = Rng.sample_without_replacement rng len (Array.length props) in
      let q = Propset.of_list (Array.to_list (Array.map (fun i -> props.(i)) pick)) in
      if not (Propset.Tbl.mem seen q) then begin
        Propset.Tbl.add seen q ();
        (* Utility: popularity proxy = ground-truth result size, jittered. *)
        let popularity = List.length (Catalog.ground_truth catalog q) in
        let u = float_of_int (1 + popularity) *. (0.5 +. Rng.float rng 1.0) in
        queries := (q, Float.round (min 50.0 (max 1.0 u))) :: !queries
      end
    end
  done;
  (* Cost model: labelling effort grows with conjunction rarity (rare
     positives need many labelled examples to hit the accuracy bar). *)
  let cost c =
    let positives = List.length (Catalog.ground_truth catalog c) in
    let rarity = float_of_int n_items /. float_of_int (max positives 1) in
    let base = params.cost_scale *. log (1.0 +. rarity) in
    let h = Rng.create ((Propset.hash c * 977) lxor seed) in
    Float.round (max 1.0 (base *. (0.75 +. Rng.float h 0.5)))
  in
  Instance.create ~name:"catalog-workload" ~budget:params.budget
    ~queries:(Array.of_list !queries) ~cost ()

type report = {
  selected : Solution.t;
  queries_covered : int;
  avg_growth : float;
  median_growth : float;
  avg_recall_before : float;
  avg_recall_after : float;
  avg_precision_after : float;
}

let run ?(params = default_workload) ?(solve = fun i -> Bcc_core.Solver.solve i) catalog
    ~seed =
  let inst = instance_of_catalog ~params catalog ~seed in
  let sol = solve inst in
  (* Construct and deploy the selected classifiers. *)
  let engine = Search.create catalog in
  List.iter
    (fun props ->
      let cost = Instance.cost_of inst props in
      let cl = Trained.construct ~seed ~props ~cost ~accuracy_floor:0.9 in
      Search.deploy engine cl)
    sol.Solution.classifiers;
  (* Quality over the covered queries (the ones the selection targets). *)
  let state = Cover.create inst in
  List.iter (fun c -> ignore (Cover.select_set state c)) sol.Solution.classifiers;
  let covered = Cover.covered_queries state in
  let growths = ref [] and rb = ref [] and ra = ref [] and pa = ref [] in
  List.iter
    (fun qi ->
      let q = Instance.query inst qi in
      let quality = Search.evaluate engine q in
      let baseline_set = Catalog.explicit_matches catalog q in
      let truth = Catalog.ground_truth catalog q in
      let recall_before =
        if truth = [] then 1.0
        else float_of_int (List.length baseline_set) /. float_of_int (List.length truth)
      in
      if quality.Search.growth <> infinity then growths := quality.Search.growth :: !growths;
      rb := recall_before :: !rb;
      ra := quality.Search.recall :: !ra;
      pa := quality.Search.precision :: !pa)
    covered;
  let mean xs =
    match xs with [] -> 0.0 | _ -> Bcc_util.Stats.mean (Array.of_list xs)
  in
  let median xs =
    match xs with [] -> 0.0 | _ -> Bcc_util.Stats.median (Array.of_list xs)
  in
  {
    selected = sol;
    queries_covered = List.length covered;
    avg_growth = mean !growths;
    median_growth = median !growths;
    avg_recall_before = mean !rb;
    avg_recall_after = mean !ra;
    avg_precision_after = mean !pa;
  }

let pp_report fmt r =
  Format.fprintf fmt
    "@[<v>selected %d classifiers (cost %.0f) covering %d queries@ result-set growth: avg \
     %.2fx, median %.2fx@ recall: %.2f -> %.2f (precision after: %.2f)@]"
    (List.length r.selected.Solution.classifiers)
    r.selected.Solution.cost r.queries_covered r.avg_growth r.median_growth
    r.avg_recall_before r.avg_recall_after r.avg_precision_after
