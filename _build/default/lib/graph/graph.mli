(** Undirected graphs with node costs and edge weights.

    This is the substrate shared by the DkS/HkS solvers, the Quadratic
    Knapsack algorithm ([A^QK_H], Section 4.1 of the paper) and the exact
    MC3 reduction.  Graphs are built through a mutable {!builder} and
    frozen into a compact CSR (compressed sparse row) representation for
    fast neighbour iteration. *)

type t

(** {1 Construction} *)

type builder

val builder : int -> builder
(** [builder n] starts a graph on nodes [0 .. n-1] with zero node costs
    and no edges. *)

val set_node_cost : builder -> int -> float -> unit

val add_edge : builder -> int -> int -> float -> unit
(** [add_edge b u v w] adds an undirected edge; parallel edges are merged
    by summing weights.  Self loops are rejected.
    @raise Invalid_argument on a self loop or out-of-range endpoint. *)

val build : builder -> t

val of_edges : ?node_costs:float array -> int -> (int * int * float) list -> t
(** Convenience wrapper over the builder. *)

(** {1 Accessors} *)

val n : t -> int
(** Number of nodes. *)

val m : t -> int
(** Number of (merged) undirected edges. *)

val node_cost : t -> int -> float
val node_costs : t -> float array
(** Fresh copy of the node-cost vector. *)

val total_edge_weight : t -> float
val degree : t -> int -> int
val weighted_degree : t -> int -> float

val iter_neighbors : t -> int -> (int -> float -> unit) -> unit
val fold_neighbors : t -> int -> ('a -> int -> float -> 'a) -> 'a -> 'a
val iter_edges : t -> (int -> int -> float -> unit) -> unit
val edges : t -> (int * int * float) array
(** Each undirected edge once, as [(u, v, w)] with [u < v]. *)

val edge_weight : t -> int -> int -> float option

(** {1 Derived quantities} *)

val induced_weight : t -> bool array -> float
(** Total weight of edges with both endpoints selected. *)

val induced_cost : t -> bool array -> float
(** Total node cost of the selected set. *)

val subgraph : t -> bool array -> t * int array
(** [subgraph g sel] keeps selected nodes and the edges among them;
    returns the new graph and the mapping from new ids to original ids. *)

val connected_components : t -> int array * int
(** [connected_components g] labels each node with a component id in
    [0, k) and returns [k]. *)

val complement_weight : t -> float
(** Sum of node costs, for sanity checks and normalization. *)
