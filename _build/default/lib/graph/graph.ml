type t = {
  n : int;
  node_cost : float array;
  (* CSR adjacency: neighbours of v are nbr.(idx.(v)) .. nbr.(idx.(v+1)-1). *)
  idx : int array;
  nbr : int array;
  w : float array;
  (* Each undirected edge once, u < v. *)
  eu : int array;
  ev : int array;
  ew : float array;
}

type builder = {
  bn : int;
  bcost : float array;
  btbl : (int * int, float) Hashtbl.t;
}

let builder n =
  if n < 0 then invalid_arg "Graph.builder";
  { bn = n; bcost = Array.make (max n 1) 0.0; btbl = Hashtbl.create (4 * max n 1) }

let set_node_cost b v c =
  if v < 0 || v >= b.bn then invalid_arg "Graph.set_node_cost";
  b.bcost.(v) <- c

let add_edge b u v w =
  if u = v then invalid_arg "Graph.add_edge: self loop";
  if u < 0 || v < 0 || u >= b.bn || v >= b.bn then invalid_arg "Graph.add_edge: out of range";
  let key = if u < v then (u, v) else (v, u) in
  let prev = try Hashtbl.find b.btbl key with Not_found -> 0.0 in
  Hashtbl.replace b.btbl key (prev +. w)

let build b =
  let m = Hashtbl.length b.btbl in
  let eu = Array.make (max m 1) 0
  and ev = Array.make (max m 1) 0
  and ew = Array.make (max m 1) 0.0 in
  let i = ref 0 in
  Hashtbl.iter
    (fun (u, v) w ->
      eu.(!i) <- u;
      ev.(!i) <- v;
      ew.(!i) <- w;
      incr i)
    b.btbl;
  (* Sort edges for deterministic iteration order regardless of hash
     internals. *)
  let order = Array.init m (fun i -> i) in
  Array.sort (fun a bi -> compare (eu.(a), ev.(a)) (eu.(bi), ev.(bi))) order;
  let eu' = Array.init (max m 1) (fun i -> if i < m then eu.(order.(i)) else 0)
  and ev' = Array.init (max m 1) (fun i -> if i < m then ev.(order.(i)) else 0)
  and ew' = Array.init (max m 1) (fun i -> if i < m then ew.(order.(i)) else 0.0) in
  let deg = Array.make (b.bn + 1) 0 in
  for i = 0 to m - 1 do
    deg.(eu'.(i)) <- deg.(eu'.(i)) + 1;
    deg.(ev'.(i)) <- deg.(ev'.(i)) + 1
  done;
  let idx = Array.make (b.bn + 1) 0 in
  for v = 1 to b.bn do
    idx.(v) <- idx.(v - 1) + deg.(v - 1)
  done;
  let fill = Array.copy idx in
  let nbr = Array.make (max (2 * m) 1) 0
  and w = Array.make (max (2 * m) 1) 0.0 in
  for i = 0 to m - 1 do
    let u = eu'.(i) and v = ev'.(i) and x = ew'.(i) in
    nbr.(fill.(u)) <- v;
    w.(fill.(u)) <- x;
    fill.(u) <- fill.(u) + 1;
    nbr.(fill.(v)) <- u;
    w.(fill.(v)) <- x;
    fill.(v) <- fill.(v) + 1
  done;
  {
    n = b.bn;
    node_cost = Array.sub b.bcost 0 (max b.bn 1);
    idx;
    nbr;
    w;
    eu = (if m = 0 then [||] else Array.sub eu' 0 m);
    ev = (if m = 0 then [||] else Array.sub ev' 0 m);
    ew = (if m = 0 then [||] else Array.sub ew' 0 m);
  }

let of_edges ?node_costs n edge_list =
  let b = builder n in
  (match node_costs with
  | Some costs -> Array.iteri (fun v c -> if v < n then set_node_cost b v c) costs
  | None -> ());
  List.iter (fun (u, v, w) -> add_edge b u v w) edge_list;
  build b

let n t = t.n
let m t = Array.length t.eu
let node_cost t v = t.node_cost.(v)
let node_costs t = if t.n = 0 then [||] else Array.sub t.node_cost 0 t.n
let total_edge_weight t = Array.fold_left ( +. ) 0.0 t.ew
let degree t v = t.idx.(v + 1) - t.idx.(v)

let iter_neighbors t v f =
  for i = t.idx.(v) to t.idx.(v + 1) - 1 do
    f t.nbr.(i) t.w.(i)
  done

let fold_neighbors t v f init =
  let acc = ref init in
  iter_neighbors t v (fun u w -> acc := f !acc u w);
  !acc

let weighted_degree t v = fold_neighbors t v (fun acc _ w -> acc +. w) 0.0

let iter_edges t f =
  for i = 0 to Array.length t.eu - 1 do
    f t.eu.(i) t.ev.(i) t.ew.(i)
  done

let edges t = Array.init (Array.length t.eu) (fun i -> (t.eu.(i), t.ev.(i), t.ew.(i)))

let edge_weight t u v =
  let result = ref None in
  iter_neighbors t u (fun x w -> if x = v then result := Some w);
  !result

let induced_weight t sel =
  let acc = ref 0.0 in
  iter_edges t (fun u v w -> if sel.(u) && sel.(v) then acc := !acc +. w);
  !acc

let induced_cost t sel =
  let acc = ref 0.0 in
  for v = 0 to t.n - 1 do
    if sel.(v) then acc := !acc +. t.node_cost.(v)
  done;
  !acc

let subgraph t sel =
  let map = Array.make t.n (-1) in
  let back = ref [] in
  let count = ref 0 in
  for v = 0 to t.n - 1 do
    if sel.(v) then begin
      map.(v) <- !count;
      back := v :: !back;
      incr count
    end
  done;
  let back = Array.of_list (List.rev !back) in
  let b = builder !count in
  Array.iteri (fun i v -> set_node_cost b i t.node_cost.(v)) back;
  iter_edges t (fun u v w -> if sel.(u) && sel.(v) then add_edge b map.(u) map.(v) w);
  (build b, back)

let connected_components t =
  let comp = Array.make t.n (-1) in
  let next = ref 0 in
  let stack = Stack.create () in
  for start = 0 to t.n - 1 do
    if comp.(start) < 0 then begin
      let id = !next in
      incr next;
      Stack.push start stack;
      comp.(start) <- id;
      while not (Stack.is_empty stack) do
        let v = Stack.pop stack in
        iter_neighbors t v (fun u _ ->
            if comp.(u) < 0 then begin
              comp.(u) <- id;
              Stack.push u stack
            end)
      done
    end
  done;
  (comp, !next)

let complement_weight t = Array.fold_left ( +. ) 0.0 (node_costs t)
