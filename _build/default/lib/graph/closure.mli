(** Maximum-weight closure via minimum cut.

    A closure of a directed graph is a node set with no outgoing edges:
    if [u] is selected and [u -> v] exists, [v] must be selected too.
    Given node weights (positive = profit, negative = cost), the
    maximum-weight closure is found with one s-t minimum cut
    (Picard 1976).  The exact MC3 solver for [l <= 2] is an instance:
    each length-2 query is a "project" with profit [c(XY)] (the saving
    from not building the pair classifier) requiring both endpoint
    singletons (costs). *)

val solve : weights:float array -> edges:(int * int) list -> float * bool array
(** [solve ~weights ~edges] returns the value of the maximum-weight
    closure and its indicator vector.  [edges] are the prerequisite arcs
    [u -> v] ("selecting [u] forces [v]").  The empty closure (value 0)
    is always feasible, so the returned value is non-negative. *)
