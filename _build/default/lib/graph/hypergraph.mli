(** Hypergraphs with node costs and hyperedge weights.

    Used for the DkSH hardness special case ([I_3], Theorem 3.3), for the
    densest-subhypergraph peeling that powers the ECC algorithm for
    [l > 2] (Theorem 5.4), and by tests. *)

type t

val create : node_costs:float array -> edges:(int array * float) array -> t
(** Each edge is a set of distinct node ids with a weight.  Edge node
    arrays are sorted and deduplicated internally.
    @raise Invalid_argument on an out-of-range node or an empty edge. *)

val n : t -> int
val m : t -> int
val node_cost : t -> int -> float
val edge_nodes : t -> int -> int array
val edge_weight : t -> int -> float
val incident_edges : t -> int -> int array
(** Ids of edges containing the node. *)

val total_edge_weight : t -> float

val induced_weight : t -> bool array -> float
(** Total weight of hyperedges all of whose nodes are selected. *)

val induced_cost : t -> bool array -> float

val max_edge_cardinality : t -> int
