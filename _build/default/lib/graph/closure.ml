let solve ~weights ~edges =
  let n = Array.length weights in
  let s = n and t = n + 1 in
  let net = Maxflow.create (n + 2) in
  let positive_total = ref 0.0 in
  Array.iteri
    (fun v w ->
      if w > 0.0 then begin
        positive_total := !positive_total +. w;
        Maxflow.add_edge net s v w
      end
      else if w < 0.0 then Maxflow.add_edge net v t (-.w))
    weights;
  List.iter (fun (u, v) -> Maxflow.add_edge net u v Maxflow.infinity_cap) edges;
  let cut = Maxflow.max_flow net s t in
  let side = Maxflow.min_cut_side net s in
  let sel = Array.init n (fun v -> side.(v)) in
  (!positive_total -. cut, sel)
