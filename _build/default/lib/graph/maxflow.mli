(** Dinic's maximum-flow / minimum-cut algorithm on directed networks.

    This is the engine behind the exact MC3 solver for [l <= 2]
    (minimum-cut formulation of "cover xy with XY or with both X and Y")
    and the maximum-weight closure solver. *)

type t

val create : int -> t
(** [create n] makes an empty network on nodes [0 .. n-1]. *)

val add_edge : t -> int -> int -> float -> unit
(** [add_edge t u v cap] adds a directed edge with the given capacity
    (and an implicit residual reverse edge of capacity 0).
    @raise Invalid_argument on negative capacity or bad endpoints. *)

val max_flow : t -> int -> int -> float
(** [max_flow t s sink] computes the maximum flow value.  The network
    retains the final flow, so {!min_cut_side} is meaningful
    afterwards. *)

val min_cut_side : t -> int -> bool array
(** [min_cut_side t s] returns the set of nodes reachable from [s] in
    the residual network — the source side of a minimum cut.  Call after
    {!max_flow}. *)

val infinity_cap : float
(** A capacity that behaves as infinity for the problem sizes in this
    library (no overflow under summation). *)
