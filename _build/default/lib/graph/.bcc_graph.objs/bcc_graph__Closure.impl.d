lib/graph/closure.ml: Array List Maxflow
