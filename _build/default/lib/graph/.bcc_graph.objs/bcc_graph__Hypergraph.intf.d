lib/graph/hypergraph.mli:
