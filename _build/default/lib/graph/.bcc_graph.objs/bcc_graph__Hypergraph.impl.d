lib/graph/hypergraph.ml: Array List
