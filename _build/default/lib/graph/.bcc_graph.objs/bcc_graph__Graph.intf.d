lib/graph/graph.mli:
