lib/graph/closure.mli:
