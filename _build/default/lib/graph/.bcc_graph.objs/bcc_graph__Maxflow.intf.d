lib/graph/maxflow.mli:
