(* Dinic's algorithm with edge arrays.  Edges are stored in pairs so the
   reverse edge of edge [e] is [e lxor 1]. *)

type t = {
  n : int;
  mutable head : int array; (* node -> first edge id or -1 *)
  mutable nxt : int array; (* edge -> next edge id or -1 *)
  mutable dst : int array; (* edge -> destination *)
  mutable cap : float array; (* edge -> remaining capacity *)
  mutable m : int;
  mutable level : int array;
  mutable cursor : int array;
}

let infinity_cap = 1e18

let create n =
  {
    n;
    head = Array.make (max n 1) (-1);
    nxt = Array.make 16 (-1);
    dst = Array.make 16 0;
    cap = Array.make 16 0.0;
    m = 0;
    level = Array.make (max n 1) (-1);
    cursor = Array.make (max n 1) (-1);
  }

let ensure_capacity t needed =
  let len = Array.length t.dst in
  if needed > len then begin
    let len' = max needed (2 * len) in
    let grow_int a = Array.append a (Array.make (len' - len) (-1)) in
    let grow_float a = Array.append a (Array.make (len' - len) 0.0) in
    t.nxt <- grow_int t.nxt;
    t.dst <- grow_int t.dst;
    t.cap <- grow_float t.cap
  end

let add_directed t u v c =
  let e = t.m in
  ensure_capacity t (e + 1);
  t.dst.(e) <- v;
  t.cap.(e) <- c;
  t.nxt.(e) <- t.head.(u);
  t.head.(u) <- e;
  t.m <- e + 1

let add_edge t u v c =
  if c < 0.0 then invalid_arg "Maxflow.add_edge: negative capacity";
  if u < 0 || v < 0 || u >= t.n || v >= t.n then invalid_arg "Maxflow.add_edge: out of range";
  add_directed t u v c;
  add_directed t v u 0.0

let bfs t s sink =
  Array.fill t.level 0 t.n (-1);
  let q = Queue.create () in
  Queue.push s q;
  t.level.(s) <- 0;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let e = ref t.head.(v) in
    while !e >= 0 do
      let u = t.dst.(!e) in
      if t.cap.(!e) > 1e-12 && t.level.(u) < 0 then begin
        t.level.(u) <- t.level.(v) + 1;
        Queue.push u q
      end;
      e := t.nxt.(!e)
    done
  done;
  t.level.(sink) >= 0

let rec dfs t v sink pushed =
  if v = sink then pushed
  else begin
    let result = ref 0.0 in
    while !result = 0.0 && t.cursor.(v) >= 0 do
      let e = t.cursor.(v) in
      let u = t.dst.(e) in
      if t.cap.(e) > 1e-12 && t.level.(u) = t.level.(v) + 1 then begin
        let got = dfs t u sink (min pushed t.cap.(e)) in
        if got > 0.0 then begin
          t.cap.(e) <- t.cap.(e) -. got;
          t.cap.(e lxor 1) <- t.cap.(e lxor 1) +. got;
          result := got
        end
        else t.cursor.(v) <- t.nxt.(e)
      end
      else t.cursor.(v) <- t.nxt.(e)
    done;
    !result
  end

let max_flow t s sink =
  if s = sink then invalid_arg "Maxflow.max_flow: s = sink";
  let flow = ref 0.0 in
  while bfs t s sink do
    Array.blit t.head 0 t.cursor 0 t.n;
    let pushed = ref (dfs t s sink infinity_cap) in
    while !pushed > 0.0 do
      flow := !flow +. !pushed;
      pushed := dfs t s sink infinity_cap
    done
  done;
  !flow

let min_cut_side t s =
  let side = Array.make t.n false in
  let q = Queue.create () in
  Queue.push s q;
  side.(s) <- true;
  while not (Queue.is_empty q) do
    let v = Queue.pop q in
    let e = ref t.head.(v) in
    while !e >= 0 do
      let u = t.dst.(!e) in
      if t.cap.(!e) > 1e-12 && not side.(u) then begin
        side.(u) <- true;
        Queue.push u q
      end;
      e := t.nxt.(!e)
    done
  done;
  side
