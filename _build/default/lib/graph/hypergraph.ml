type t = {
  node_cost : float array;
  enodes : int array array;
  eweight : float array;
  incident : int array array;
}

let create ~node_costs ~edges =
  let n = Array.length node_costs in
  let enodes =
    Array.map
      (fun (nodes, _) ->
        let nodes = Array.copy nodes in
        Array.sort compare nodes;
        let dedup = ref [] in
        Array.iteri
          (fun i v ->
            if v < 0 || v >= n then invalid_arg "Hypergraph.create: node out of range";
            if i = 0 || nodes.(i - 1) <> v then dedup := v :: !dedup)
          nodes;
        let nodes = Array.of_list (List.rev !dedup) in
        if Array.length nodes = 0 then invalid_arg "Hypergraph.create: empty edge";
        nodes)
      edges
  in
  let eweight = Array.map snd edges in
  let deg = Array.make n 0 in
  Array.iter (fun nodes -> Array.iter (fun v -> deg.(v) <- deg.(v) + 1) nodes) enodes;
  let incident = Array.map (fun d -> Array.make d 0) deg in
  let fill = Array.make n 0 in
  Array.iteri
    (fun e nodes ->
      Array.iter
        (fun v ->
          incident.(v).(fill.(v)) <- e;
          fill.(v) <- fill.(v) + 1)
        nodes)
    enodes;
  { node_cost = Array.copy node_costs; enodes; eweight; incident }

let n t = Array.length t.node_cost
let m t = Array.length t.enodes
let node_cost t v = t.node_cost.(v)
let edge_nodes t e = t.enodes.(e)
let edge_weight t e = t.eweight.(e)
let incident_edges t v = t.incident.(v)
let total_edge_weight t = Array.fold_left ( +. ) 0.0 t.eweight

let induced_weight t sel =
  let acc = ref 0.0 in
  Array.iteri
    (fun e nodes -> if Array.for_all (fun v -> sel.(v)) nodes then acc := !acc +. t.eweight.(e))
    t.enodes;
  !acc

let induced_cost t sel =
  let acc = ref 0.0 in
  Array.iteri (fun v c -> if sel.(v) then acc := !acc +. c) t.node_cost;
  !acc

let max_edge_cardinality t = Array.fold_left (fun acc e -> max acc (Array.length e)) 0 t.enodes
