(** Small descriptive-statistics helpers used by the bench harness and
    the dataset generators. *)

val mean : float array -> float
val variance : float array -> float
(** Sample variance (divides by [n - 1]; 0 for fewer than 2 points). *)

val stddev : float array -> float
val min : float array -> float
val max : float array -> float
val sum : float array -> float

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100], linear interpolation between
    order statistics.  @raise Invalid_argument on an empty array. *)

val median : float array -> float

val histogram : int -> float array -> (float * float * int) array
(** [histogram bins xs] returns [(lo, hi, count)] per equal-width bin. *)
