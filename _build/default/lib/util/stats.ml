let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.0
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min xs =
  if Array.length xs = 0 then invalid_arg "Stats.min: empty";
  Array.fold_left Stdlib.min xs.(0) xs

let max xs =
  if Array.length xs = 0 then invalid_arg "Stats.max: empty";
  Array.fold_left Stdlib.max xs.(0) xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.percentile: empty";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy xs in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (floor rank) and hi = int_of_float (ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let median xs = percentile xs 50.0

let histogram bins xs =
  if bins <= 0 then invalid_arg "Stats.histogram: bins must be positive";
  if Array.length xs = 0 then [||]
  else begin
    let lo = min xs and hi = max xs in
    let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
    let counts = Array.make bins 0 in
    Array.iter
      (fun x ->
        let b = int_of_float ((x -. lo) /. width) in
        let b = Stdlib.min b (bins - 1) in
        counts.(b) <- counts.(b) + 1)
      xs;
    Array.mapi
      (fun i c -> (lo +. (float_of_int i *. width), lo +. (float_of_int (i + 1) *. width), c))
      counts
  end
