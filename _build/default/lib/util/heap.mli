(** Indexed binary min-heap over integer keys with float priorities.

    Keys are integers in [0, capacity).  Each key is present at most
    once; its priority can be updated in O(log n), which is what the
    greedy-peeling solvers need (degree updates as neighbours leave the
    graph).  Use [Heap.max_heap] semantics by negating priorities at the
    call site, or the dedicated [create ~max:true]. *)

type t

val create : ?max:bool -> int -> t
(** [create capacity] makes an empty heap for keys [0 .. capacity-1].
    With [~max:true] the heap pops the highest priority first. *)

val size : t -> int
val is_empty : t -> bool
val mem : t -> int -> bool

val priority : t -> int -> float
(** Current priority of a member key.  @raise Not_found otherwise. *)

val insert : t -> int -> float -> unit
(** @raise Invalid_argument if the key is already present or out of
    range. *)

val update : t -> int -> float -> unit
(** Set the priority of a present key (any direction), or insert it if
    absent. *)

val add_to : t -> int -> float -> unit
(** [add_to h k d] adds [d] to the priority of present key [k]; inserts
    with priority [d] if absent. *)

val peek : t -> (int * float) option
val pop : t -> (int * float) option
val remove : t -> int -> bool
(** [remove h k] removes [k] if present; returns whether it was. *)

val to_sorted_list : t -> (int * float) list
(** Non-destructive: members sorted by pop order. *)
