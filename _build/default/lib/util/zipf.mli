(** Zipf-distributed sampling over ranks [1 .. n], used by the dataset
    generators to model query popularity and property reuse (popular
    queries/properties recur far more often than the tail). *)

type t

val create : ?s:float -> int -> t
(** [create ~s n] precomputes the CDF of a Zipf law with exponent [s]
    (default 1.0) over [n] ranks.  @raise Invalid_argument if [n <= 0]. *)

val sample : t -> Rng.t -> int
(** Draw a rank in [0, n), rank 0 being the most likely. *)

val weight : t -> int -> float
(** Unnormalized weight of a rank ([1 / (rank+1)^s]). *)
