type t = {
  mutable size : int;
  keys : int array; (* slot -> key *)
  pos : int array; (* key -> slot, or -1 when absent *)
  prio : float array; (* key -> priority *)
  sign : float; (* +1 for min-heap, -1 for max-heap *)
}

let create ?(max = false) capacity =
  if capacity < 0 then invalid_arg "Heap.create";
  {
    size = 0;
    keys = Array.make (Stdlib.max capacity 1) (-1);
    pos = Array.make (Stdlib.max capacity 1) (-1);
    prio = Array.make (Stdlib.max capacity 1) 0.0;
    sign = (if max then -1.0 else 1.0);
  }

let size t = t.size
let is_empty t = t.size = 0
let mem t key = key >= 0 && key < Array.length t.pos && t.pos.(key) >= 0

let priority t key =
  if not (mem t key) then raise Not_found;
  t.prio.(key) *. t.sign

(* Internal priorities are stored pre-multiplied by [sign] so the heap
   invariant is always "parent <= child". *)

let swap t i j =
  let ki = t.keys.(i) and kj = t.keys.(j) in
  t.keys.(i) <- kj;
  t.keys.(j) <- ki;
  t.pos.(kj) <- i;
  t.pos.(ki) <- j

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.prio.(t.keys.(i)) < t.prio.(t.keys.(parent)) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && t.prio.(t.keys.(l)) < t.prio.(t.keys.(!smallest)) then smallest := l;
  if r < t.size && t.prio.(t.keys.(r)) < t.prio.(t.keys.(!smallest)) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let insert t key p =
  if key < 0 || key >= Array.length t.pos then invalid_arg "Heap.insert: key out of range";
  if t.pos.(key) >= 0 then invalid_arg "Heap.insert: key already present";
  t.prio.(key) <- p *. t.sign;
  t.keys.(t.size) <- key;
  t.pos.(key) <- t.size;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let update t key p =
  if not (mem t key) then insert t key p
  else begin
    let old = t.prio.(key) in
    t.prio.(key) <- p *. t.sign;
    let i = t.pos.(key) in
    if t.prio.(key) < old then sift_up t i else sift_down t i
  end

let add_to t key d =
  if mem t key then update t key ((t.prio.(key) *. t.sign) +. d) else insert t key d

let peek t = if t.size = 0 then None else Some (t.keys.(0), t.prio.(t.keys.(0)) *. t.sign)

let remove_at t i =
  let key = t.keys.(i) in
  t.size <- t.size - 1;
  if i <> t.size then begin
    let last = t.keys.(t.size) in
    t.keys.(i) <- last;
    t.pos.(last) <- i;
    t.pos.(key) <- -1;
    (* The moved element may need to go either way. *)
    sift_up t i;
    sift_down t (t.pos.(last))
  end
  else t.pos.(key) <- -1;
  key

let pop t =
  if t.size = 0 then None
  else begin
    let p = t.prio.(t.keys.(0)) *. t.sign in
    let key = remove_at t 0 in
    Some (key, p)
  end

let remove t key =
  if not (mem t key) then false
  else begin
    ignore (remove_at t t.pos.(key));
    true
  end

let to_sorted_list t =
  let members = ref [] in
  for i = 0 to t.size - 1 do
    let k = t.keys.(i) in
    members := (k, t.prio.(k) *. t.sign) :: !members
  done;
  List.sort (fun (_, a) (_, b) -> compare (a *. t.sign) (b *. t.sign)) !members
