lib/util/timer.mli:
