lib/util/heap.mli:
