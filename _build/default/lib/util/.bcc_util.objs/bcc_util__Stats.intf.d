lib/util/stats.mli:
