lib/util/rng.mli:
