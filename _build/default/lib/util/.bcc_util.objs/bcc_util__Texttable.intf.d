lib/util/texttable.mli:
