type t = { cdf : float array; s : float }

let create ?(s = 1.0) n =
  if n <= 0 then invalid_arg "Zipf.create";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for rank = 0 to n - 1 do
    acc := !acc +. (1.0 /. (float_of_int (rank + 1) ** s));
    cdf.(rank) <- !acc
  done;
  { cdf; s }

let weight t rank = 1.0 /. (float_of_int (rank + 1) ** t.s)

let sample t rng =
  let total = t.cdf.(Array.length t.cdf - 1) in
  let target = Rng.float rng total in
  (* Binary search for the first rank whose cumulative weight exceeds the
     target. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > target then hi := mid else lo := mid + 1
  done;
  !lo
