(** Wall-clock timing for the bench harness. *)

type t

val start : unit -> t
val elapsed_s : t -> float
(** Seconds since [start]. *)

val time : (unit -> 'a) -> 'a * float
(** [time f] runs [f ()] and also returns its wall-clock duration in
    seconds. *)
