(** Fixed-width text tables for bench output, shaped like the rows the
    paper's figures report. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Rows shorter than the header are right-padded with empty cells. *)

val render : t -> string
(** Render with aligned columns and a separator under the header. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
