type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }
let add_row t row = t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let ncols = List.length t.headers in
  let pad_row row =
    let len = List.length row in
    if len >= ncols then row else row @ List.init (ncols - len) (fun _ -> "")
  in
  let rows = List.map pad_row rows in
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (fun row -> List.iteri (fun i cell -> if i < ncols then widths.(i) <- max widths.(i) (String.length cell)) row)
    rows;
  let buf = Buffer.create 256 in
  let emit_row row =
    List.iteri
      (fun i cell ->
        if i > 0 then Buffer.add_string buf "  ";
        Buffer.add_string buf cell;
        if i < ncols - 1 then Buffer.add_string buf (String.make (widths.(i) - String.length cell) ' '))
      row;
    Buffer.add_char buf '\n'
  in
  emit_row t.headers;
  Array.iteri
    (fun i w ->
      if i > 0 then Buffer.add_string buf "  ";
      ignore i;
      Buffer.add_string buf (String.make w '-'))
    widths;
  Buffer.add_char buf '\n';
  List.iter emit_row rows;
  Buffer.contents buf

let print t = print_string (render t)
