(** Heaviest-k-Subgraph (HkS) heuristics, blow-up aware.

    The paper's [A^QK_H] replaces every node [v] of cost [c(v)] by
    [c(v)] unit-cost copies and runs an HkS heuristic on the blown-up
    graph (Section 4.1, "Solving HkS on a blown-up graph").  This module
    never materializes the blow-up: an {!instance} carries an integer
    multiplicity per node and all solvers reason about how many copies
    of each node to select.  With all multiplicities 1 this is plain
    DkS/HkS.

    The per-copy edge weight between copies of [u] and [v] is
    [w(u,v) / (mult(u) * mult(v))], so selecting all copies of both
    endpoints recovers exactly [w(u,v)] — the invariant the paper's
    reduction relies on.

    The portfolio in {!solve} — greedy peeling, greedy addition,
    spectral rounding (Papailiopoulos-style) and local swap search —
    is this library's substitute for the closed-source convex heuristic
    of Konar & Sidiropoulos [41]; the paper treats that component as a
    black box with empirically near-optimal quality, and Section 7 notes
    alternative HkS heuristics can be plugged in. *)

type instance

val make : ?mult:int array -> Bcc_graph.Graph.t -> k:int -> instance
(** [make g ~k] builds an instance asking for [k] copies.  [mult]
    defaults to all ones; entries must be positive.
    @raise Invalid_argument on a non-positive multiplicity. *)

val graph : instance -> Bcc_graph.Graph.t
val multiplicities : instance -> int array
val k : instance -> int
val total_copies : instance -> int

type selection = int array
(** [sel.(v)] = number of copies of node [v] selected. *)

val copies : selection -> int
(** Total selected copies. *)

val value : instance -> selection -> float
(** Induced weight: [sum over edges of w * (t_u/c_u) * (t_v/c_v)]. *)

val feasible : instance -> selection -> bool
(** Within multiplicities and at most [k] copies. *)

val peel : instance -> selection
(** Charikar-style greedy peeling: start from everything, repeatedly
    drop the copy with the smallest per-copy weighted degree until [k]
    copies remain. *)

val greedy_add : instance -> selection
(** Seed with the densest edge, then repeatedly add the copy with the
    largest marginal gain until [k] copies are selected. *)

val spectral : ?iters:int -> instance -> selection
(** Power iteration for the leading eigenvector of the (cost-normalized)
    weight matrix, then fill the [k] copies in eigenvector order —
    the low-rank rounding of [53]. *)

val local_search : ?max_rounds:int -> instance -> selection -> selection
(** Hill climbing by copy swaps: while some non-selected copy gains more
    than the cheapest selected copy loses, swap them.  Never decreases
    {!value}. *)

val solve : instance -> selection
(** Best of {!peel}, {!greedy_add} and {!spectral}, each polished by
    {!local_search}. *)
