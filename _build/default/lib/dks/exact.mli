(** Brute-force test oracles for the subgraph-density problems.

    Exponential — intended only for small instances in tests and for the
    paper's brute-force comparison (Figure 3d methodology). *)

val dks : Bcc_graph.Graph.t -> k:int -> bool array * float
(** Optimal k-node subgraph by induced edge weight (HkS when the graph
    is weighted).  @raise Invalid_argument if the graph has more than 30
    nodes. *)

val dks_bnb : Bcc_graph.Graph.t -> k:int -> bool array * float
(** Same optimum via best-first branch and bound (in the spirit of the
    exact/superpolynomial algorithms the paper's Section 7 points to,
    [9, 43]): vertices are branched in decreasing weighted-degree order
    and a subtree is cut when [current weight + sum over the r best
    remaining vertices of (weight into chosen + half weight among
    candidates)] cannot beat the incumbent.  Practical well beyond the
    subset-enumeration limit (~50-60 nodes at moderate k). *)

val qk : Bcc_graph.Graph.t -> budget:float -> bool array * float
(** Optimal Quadratic Knapsack: maximize induced edge weight subject to
    a total node-cost budget.  Same size restriction as {!dks}. *)

val densest_ratio : Bcc_graph.Hypergraph.t -> bool array * float
(** Optimal (edge weight / node cost) ratio over all non-empty
    subhypergraphs; the ratio is [infinity] when a positive-weight
    selection has zero cost.  @raise Invalid_argument above 20 nodes. *)
