module Hypergraph = Bcc_graph.Hypergraph
module Graph = Bcc_graph.Graph
module Closure = Bcc_graph.Closure
module Heap = Bcc_util.Heap

let ratio_of weight cost =
  if cost > 1e-12 then weight /. cost else if weight > 1e-12 then infinity else 0.0

let peel h =
  let n = Hypergraph.n h in
  if n = 0 then ([||], 0.0)
  else begin
    let alive = Array.make n true in
    let missing = Array.make (Hypergraph.m h) 0 in
    let cur_weight = ref (Hypergraph.total_edge_weight h) in
    let cur_cost = ref 0.0 in
    for v = 0 to n - 1 do
      cur_cost := !cur_cost +. Hypergraph.node_cost h v
    done;
    let best_sel = ref (Array.copy alive) in
    let best_ratio = ref (ratio_of !cur_weight !cur_cost) in
    let heap = Heap.create n in
    let degree v =
      Array.fold_left
        (fun acc e -> if missing.(e) = 0 then acc +. Hypergraph.edge_weight h e else acc)
        0.0 (Hypergraph.incident_edges h v)
    in
    (* Peel the node whose removal hurts the ratio least: smallest
       degree loss per unit of cost saved.  Zero-cost nodes with zero
       degree are removed first (they can never help); zero-cost nodes
       with positive degree are kept forever (priority infinity). *)
    let priority v =
      let d = degree v and c = Hypergraph.node_cost h v in
      if c > 1e-12 then d /. c else if d > 1e-12 then infinity else -1.0
    in
    for v = 0 to n - 1 do
      Heap.insert heap v (priority v)
    done;
    let continue_ = ref true in
    while !continue_ do
      match Heap.pop heap with
      | None -> continue_ := false
      | Some (v, _) ->
          alive.(v) <- false;
          cur_cost := !cur_cost -. Hypergraph.node_cost h v;
          Array.iter
            (fun e ->
              if missing.(e) = 0 then begin
                cur_weight := !cur_weight -. Hypergraph.edge_weight h e;
                Array.iter
                  (fun u ->
                    if u <> v && alive.(u) && Heap.mem heap u then begin
                      (* Degree of [u] dropped; refresh its priority. *)
                      let d = ref 0.0 in
                      Array.iter
                        (fun e' -> if missing.(e') = 0 && e' <> e then d := !d +. Hypergraph.edge_weight h e')
                        (Hypergraph.incident_edges h u);
                      let c = Hypergraph.node_cost h u in
                      let p =
                        if c > 1e-12 then !d /. c else if !d > 1e-12 then infinity else -1.0
                      in
                      Heap.update heap u p
                    end)
                  (Hypergraph.edge_nodes h e)
              end;
              missing.(e) <- missing.(e) + 1)
            (Hypergraph.incident_edges h v);
          let r = ratio_of !cur_weight !cur_cost in
          if r > !best_ratio then begin
            best_ratio := r;
            best_sel := Array.copy alive
          end
    done;
    (!best_sel, !best_ratio)
  end

let exact_graph g =
  let n = Graph.n g in
  let m = Graph.m g in
  if n = 0 || m = 0 then (Array.make n false, 0.0)
  else begin
    let edges = Graph.edges g in
    (* Closure network: one project node per edge (profit w), machines =
       graph nodes (cost lambda * c). *)
    let solve_at lambda =
      let weights = Array.make (n + m) 0.0 in
      for v = 0 to n - 1 do
        weights.(v) <- -.(lambda *. Graph.node_cost g v)
      done;
      let arcs = ref [] in
      Array.iteri
        (fun e (u, v, w) ->
          weights.(n + e) <- w;
          arcs := (n + e, u) :: (n + e, v) :: !arcs)
        edges;
      let value, sel = Closure.solve ~weights ~edges:!arcs in
      (value, Array.sub sel 0 n)
    in
    (* Zero-cost positive-weight subgraphs have infinite density. *)
    let huge = 1e12 in
    let v_inf, sel_inf = solve_at huge in
    if v_inf > 1e-3 then (sel_inf, infinity)
    else begin
      let density sel =
        let w = Graph.induced_weight g sel and c = Graph.induced_cost g sel in
        ratio_of w c
      in
      let lambda = ref 0.0 in
      let best_sel = ref (Array.make n false) in
      let continue_ = ref true in
      let rounds = ref 0 in
      while !continue_ && !rounds < 100 do
        incr rounds;
        let value, sel = solve_at !lambda in
        let nonempty = Array.exists (fun b -> b) sel in
        if value > 1e-9 && nonempty then begin
          let d = density sel in
          if d > !lambda +. 1e-12 then begin
            lambda := d;
            best_sel := sel
          end
          else continue_ := false
        end
        else continue_ := false
      done;
      (!best_sel, !lambda)
    end
  end
