(** Densest-k-Subhypergraph (DkSH) greedy peeling.

    [BCC(l>=3)] restricted to the [I_l] inputs of Definition 3.2 is
    exactly DkSH (Theorem 3.3); this solver backs that special case and
    the corresponding tests. *)

val peel : Bcc_graph.Hypergraph.t -> k:int -> bool array
(** Keep [k] nodes: repeatedly drop the node with the smallest total
    weight of still-fully-alive incident hyperedges. *)

val value : Bcc_graph.Hypergraph.t -> bool array -> float
(** Total weight of hyperedges whose nodes are all selected. *)
