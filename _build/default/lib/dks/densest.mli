(** Densest-Subgraph (ratio objective) greedy peeling on weighted
    hypergraphs.

    This is the engine of the ECC algorithm (Theorem 5.4): maximize
    [edge weight / node cost] over all subhypergraphs.  We implement the
    greedy [r]-approximation of Hu, Wu & Chan [35] (the paper's authors
    likewise used the greedy variant, not the exact flow algorithms):
    repeatedly peel the node with the smallest degree-to-cost
    contribution and return the best prefix encountered. *)

val peel : Bcc_graph.Hypergraph.t -> bool array * float
(** Returns the best selection found and its ratio.  Zero-cost selections
    with positive weight yield [infinity].  An empty hypergraph yields
    ([[||]], 0). *)

val exact_graph : Bcc_graph.Graph.t -> bool array * float
(** Exact densest subgraph on ordinary graphs (edge weight over node
    cost), via Dinkelbach iteration on the parametric maximum-weight
    closure: a subgraph of density above [lambda] exists iff the closure
    with edge profits [w_e] and node costs [lambda * c_v] has positive
    value.  Each iteration is one min-cut; Dinkelbach converges after
    finitely many (each strictly increases the ratio).  This realizes
    the exact PTIME algorithm Theorem 5.4 relies on for [l = 2]
    (the paper cites the flow-based algorithms of [35]). *)
