module Hypergraph = Bcc_graph.Hypergraph
module Heap = Bcc_util.Heap

let value = Hypergraph.induced_weight

let peel h ~k =
  let n = Hypergraph.n h in
  let alive = Array.make n true in
  let remaining = ref n in
  if k >= n then Array.make n true
  else begin
    (* missing.(e): number of dropped nodes of edge e; an edge contributes
       to degrees only while fully alive. *)
    let missing = Array.make (Hypergraph.m h) 0 in
    let heap = Heap.create n in
    let degree v =
      Array.fold_left
        (fun acc e -> if missing.(e) = 0 then acc +. Hypergraph.edge_weight h e else acc)
        0.0 (Hypergraph.incident_edges h v)
    in
    for v = 0 to n - 1 do
      Heap.insert heap v (degree v)
    done;
    while !remaining > max k 0 do
      match Heap.pop heap with
      | None -> remaining := max k 0
      | Some (v, _) ->
          alive.(v) <- false;
          decr remaining;
          Array.iter
            (fun e ->
              if missing.(e) = 0 then begin
                (* The edge just died: its weight leaves the degree of
                   every other alive member. *)
                Array.iter
                  (fun u ->
                    if u <> v && alive.(u) && Heap.mem heap u then
                      Heap.add_to heap u (-.Hypergraph.edge_weight h e))
                  (Hypergraph.edge_nodes h e)
              end;
              missing.(e) <- missing.(e) + 1)
            (Hypergraph.incident_edges h v)
    done;
    alive
  end
