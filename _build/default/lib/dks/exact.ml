module Graph = Bcc_graph.Graph
module Hypergraph = Bcc_graph.Hypergraph

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

let sel_of_mask n mask = Array.init n (fun v -> mask land (1 lsl v) <> 0)

let dks g ~k =
  let n = Graph.n g in
  if n > 30 then invalid_arg "Exact.dks: too many nodes";
  let best_mask = ref 0 and best_value = ref neg_infinity in
  for mask = 0 to (1 lsl n) - 1 do
    if popcount mask = min k n then begin
      let sel = sel_of_mask n mask in
      let v = Graph.induced_weight g sel in
      if v > !best_value then begin
        best_value := v;
        best_mask := mask
      end
    end
  done;
  (sel_of_mask n !best_mask, max !best_value 0.0)

let qk g ~budget =
  let n = Graph.n g in
  if n > 30 then invalid_arg "Exact.qk: too many nodes";
  let best_mask = ref 0 and best_value = ref 0.0 in
  for mask = 0 to (1 lsl n) - 1 do
    let sel = sel_of_mask n mask in
    if Graph.induced_cost g sel <= budget +. 1e-9 then begin
      let v = Graph.induced_weight g sel in
      if v > !best_value then begin
        best_value := v;
        best_mask := mask
      end
    end
  done;
  (sel_of_mask n !best_mask, !best_value)

let densest_ratio h =
  let n = Hypergraph.n h in
  if n > 20 then invalid_arg "Exact.densest_ratio: too many nodes";
  let best_sel = ref (Array.make n false) and best_ratio = ref neg_infinity in
  for mask = 1 to (1 lsl n) - 1 do
    let sel = sel_of_mask n mask in
    let w = Hypergraph.induced_weight h sel and c = Hypergraph.induced_cost h sel in
    let ratio = if c > 0.0 then w /. c else if w > 0.0 then infinity else 0.0 in
    if ratio > !best_ratio then begin
      best_ratio := ratio;
      best_sel := sel
    end
  done;
  (!best_sel, !best_ratio)

let dks_bnb g ~k =
  let n = Graph.n g in
  let k = min k n in
  if k <= 0 then (Array.make n false, 0.0)
  else begin
    (* Branch order: heaviest vertices first tighten the bound early. *)
    let order = Array.init n (fun v -> v) in
    Array.sort (fun a b -> compare (Graph.weighted_degree g b) (Graph.weighted_degree g a)) order;
    let pos = Array.make n 0 in
    Array.iteri (fun i v -> pos.(v) <- i) order;
    let chosen = Array.make n false in
    let best_sel = ref (Array.make n false) in
    let best = ref neg_infinity in
    (* weight_into.(v): current weight from v into the chosen set. *)
    let weight_into = Array.make n 0.0 in
    (* For the bound: half of v's weight toward vertices not yet decided
       (recomputed lazily against the DFS frontier). *)
    let rec dfs i taken current =
      if current > !best then begin
        best := current;
        best_sel := Array.copy chosen
      end;
      if i < n && taken < k then begin
        let slots = k - taken in
        (* Upper bound: the [slots] best candidates by optimistic
           contribution. *)
        let contribs = ref [] in
        for j = i to n - 1 do
          let v = order.(j) in
          let future =
            Graph.fold_neighbors g v
              (fun acc u w -> if (not chosen.(u)) && pos.(u) >= i then acc +. w else acc)
              0.0
          in
          contribs := (weight_into.(v) +. (0.5 *. future)) :: !contribs
        done;
        let contribs = List.sort (fun a b -> compare b a) !contribs in
        let ub =
          List.fold_left ( +. ) 0.0
            (List.filteri (fun idx _ -> idx < slots) contribs)
        in
        if current +. ub > !best +. 1e-12 then begin
          let v = order.(i) in
          (* Include v. *)
          chosen.(v) <- true;
          Graph.iter_neighbors g v (fun u w -> weight_into.(u) <- weight_into.(u) +. w);
          dfs (i + 1) (taken + 1) (current +. weight_into.(v) -. 0.0);
          Graph.iter_neighbors g v (fun u w -> weight_into.(u) <- weight_into.(u) -. w);
          chosen.(v) <- false;
          (* Exclude v (only if enough vertices remain to fill k). *)
          if n - i - 1 >= slots then dfs (i + 1) taken current
        end
      end
    in
    dfs 0 0 0.0;
    if !best < 0.0 then begin
      (* No positive subgraph found (e.g. k=1): any k vertices. *)
      let sel = Array.make n false in
      for j = 0 to k - 1 do
        sel.(order.(j)) <- true
      done;
      (sel, 0.0)
    end
    else (!best_sel, !best)
  end
