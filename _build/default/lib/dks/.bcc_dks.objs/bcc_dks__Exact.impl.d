lib/dks/exact.ml: Array Bcc_graph List
