lib/dks/dksh.mli: Bcc_graph
