lib/dks/hks.ml: Array Bcc_graph Bcc_util List
