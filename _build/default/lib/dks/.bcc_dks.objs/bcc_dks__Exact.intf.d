lib/dks/exact.mli: Bcc_graph
