lib/dks/densest.ml: Array Bcc_graph Bcc_util
