lib/dks/densest.mli: Bcc_graph
