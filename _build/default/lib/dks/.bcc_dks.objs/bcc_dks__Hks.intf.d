lib/dks/hks.mli: Bcc_graph
