lib/dks/dksh.ml: Array Bcc_graph Bcc_util
