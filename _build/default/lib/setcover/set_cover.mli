(** Greedy weighted set cover.

    The classic [H_n]-approximation: repeatedly select the set with the
    best ratio of newly covered elements to cost.  Implemented with a
    lazy-evaluation priority queue — coverage gain is submodular
    (monotonically shrinking), so re-evaluating only the current top of
    the queue reproduces the exact greedy choice. *)

type solution = { cost : float; sets : int list }

val solve : universe:int -> sets:(int array * float) array -> solution option
(** [solve ~universe ~sets] covers elements [0 .. universe-1] with the
    given [(members, cost)] sets.  Returns [None] when some element
    appears in no finite-cost set.  Sets of cost 0 are always selected
    when useful.  @raise Invalid_argument on a negative cost or an
    out-of-range element. *)

val is_cover : universe:int -> sets:(int array * float) array -> int list -> bool
(** Check that the chosen set indices cover the whole universe. *)
