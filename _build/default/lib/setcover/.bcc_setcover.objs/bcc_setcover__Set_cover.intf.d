lib/setcover/set_cover.mli:
