lib/setcover/mc3.ml: Array Bcc_graph Hashtbl List Set_cover
