lib/setcover/mc3.mli:
