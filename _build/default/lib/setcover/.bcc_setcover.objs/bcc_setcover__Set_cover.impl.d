lib/setcover/set_cover.ml: Array Bcc_util List
