(** MC3 — Minimization of Classifier Construction Costs (Definition 2.4).

    Given queries (property-id sets) and candidate classifiers with
    costs, find a minimum-cost classifier set covering {e all} queries,
    where a query is covered when a subset of selected classifiers,
    each contained in the query, unions to exactly its property set.

    Per Theorem 2.5 (due to [23]): solvable exactly in PTIME for
    [l <= 2] — realized here as a maximum-weight-closure minimum cut
    ("cover xy with the pair classifier XY or with both singletons
    X and Y" is a submodular pseudo-boolean objective) — and NP-hard
    for [l >= 3], where we use the greedy set-cover reduction
    (elements are (query, property) incidences).

    [A^BCC] (Algorithm 1, line 3) calls this as a local-search step: a
    cheaper cover of the already-covered queries frees budget for the
    residual problem. *)

type instance = {
  queries : int array array;  (** each query: sorted distinct property ids *)
  classifiers : (int array * float) array;
      (** available classifiers (sorted property-id sets) and their
          costs; a classifier not listed is unavailable; [infinity]
          costs are allowed and treated as unavailable *)
}

type solution = { cost : float; chosen : int list  (** classifier indices *) }

val max_query_length : instance -> int

val covers : instance -> int list -> bool
(** Do the chosen classifiers cover every query? *)

val solution_cost : instance -> int list -> float

val solve_exact_l2 : instance -> solution option
(** Exact minimum via one min-cut.  @raise Invalid_argument if some
    query has length above 2.  [None] when no full cover exists. *)

val solve_greedy : instance -> solution option
(** Greedy set cover over (query, property) incidence elements;
    [min{2^(l-1), O(log n)}]-approximate per Theorem 2.5. *)

val solve : instance -> solution option
(** Dispatcher: exact cut for [l <= 2], greedy otherwise (keeping the
    better of greedy and, when applicable, exact). *)

val brute_force : instance -> solution option
(** Exhaustive test oracle; exponential in the number of classifiers. *)
