type solution = { cost : float; sets : int list }

let validate ~universe ~sets =
  Array.iter
    (fun (members, cost) ->
      if cost < 0.0 then invalid_arg "Set_cover: negative cost";
      Array.iter
        (fun e -> if e < 0 || e >= universe then invalid_arg "Set_cover: element out of range")
        members)
    sets

let is_cover ~universe ~sets chosen =
  if universe = 0 then true
  else begin
    let covered = Array.make universe false in
    List.iter (fun s -> Array.iter (fun e -> covered.(e) <- true) (fst sets.(s))) chosen;
    Array.for_all (fun c -> c) covered
  end

let solve ~universe ~sets =
  validate ~universe ~sets;
  let nsets = Array.length sets in
  let covered = Array.make (max universe 1) false in
  let remaining = ref universe in
  let chosen = ref [] in
  let total = ref 0.0 in
  let select s =
    chosen := s :: !chosen;
    total := !total +. snd sets.(s);
    Array.iter
      (fun e ->
        if not covered.(e) then begin
          covered.(e) <- true;
          decr remaining
        end)
      (fst sets.(s))
  in
  let gain s =
    Array.fold_left (fun acc e -> if covered.(e) then acc else acc + 1) 0 (fst sets.(s))
  in
  (* Free sets can never hurt. *)
  Array.iteri (fun s (_, cost) -> if cost = 0.0 && gain s > 0 then select s) sets;
  let ratio s =
    let g = gain s in
    if g = 0 then 0.0
    else begin
      let cost = snd sets.(s) in
      if cost = 0.0 then infinity else float_of_int g /. cost
    end
  in
  let heap = Bcc_util.Heap.create ~max:true nsets in
  Array.iteri
    (fun s (_, cost) ->
      if cost < infinity then begin
        let r = ratio s in
        if r > 0.0 then Bcc_util.Heap.insert heap s r
      end)
    sets;
  let exception Stuck in
  (try
     while !remaining > 0 do
       match Bcc_util.Heap.pop heap with
       | None -> raise Stuck
       | Some (s, stale) ->
           let fresh = ratio s in
           if fresh <= 0.0 then ()
           else if fresh < stale -. 1e-12 then Bcc_util.Heap.insert heap s fresh
           else select s
     done
   with Stuck -> ());
  if !remaining > 0 then None else Some { cost = !total; sets = List.rev !chosen }
