type instance = {
  queries : int array array;
  classifiers : (int array * float) array;
}

type solution = { cost : float; chosen : int list }

let infinite_cost = 1e15

let max_query_length t =
  Array.fold_left (fun acc q -> max acc (Array.length q)) 0 t.queries

let is_subset small big =
  (* Both sorted ascending. *)
  let ns = Array.length small and nb = Array.length big in
  let rec go i j =
    if i >= ns then true
    else if j >= nb then false
    else if small.(i) = big.(j) then go (i + 1) (j + 1)
    else if small.(i) > big.(j) then go i (j + 1)
    else false
  in
  go 0 0

let covers t chosen =
  let chosen_sets = List.map (fun i -> fst t.classifiers.(i)) chosen in
  Array.for_all
    (fun q ->
      let mask = Array.make (Array.length q) false in
      List.iter
        (fun c ->
          if is_subset c q then
            Array.iter
              (fun p ->
                (* Mark position of p within q. *)
                let rec find lo hi =
                  if lo > hi then ()
                  else begin
                    let mid = (lo + hi) / 2 in
                    if q.(mid) = p then mask.(mid) <- true
                    else if q.(mid) < p then find (mid + 1) hi
                    else find lo (mid - 1)
                  end
                in
                find 0 (Array.length q - 1))
              c)
        chosen_sets;
      Array.for_all (fun b -> b) mask)
    t.queries

let solution_cost t chosen =
  List.fold_left (fun acc i -> acc +. snd t.classifiers.(i)) 0.0 chosen

(* ------------------------------------------------------------------ *)
(* Exact solver for l <= 2 via maximum-weight closure.                 *)
(* ------------------------------------------------------------------ *)

let solve_exact_l2 t =
  if max_query_length t > 2 then invalid_arg "Mc3.solve_exact_l2: query longer than 2";
  (* Relabel the properties that actually appear. *)
  let prop_ids = Hashtbl.create 64 in
  let next = ref 0 in
  let intern p =
    match Hashtbl.find_opt prop_ids p with
    | Some i -> i
    | None ->
        let i = !next in
        Hashtbl.add prop_ids p i;
        incr next;
        i
  in
  Array.iter (fun q -> Array.iter (fun p -> ignore (intern p)) q) t.queries;
  let nprops = !next in
  (* Cheapest available classifier per property set (there may be
     duplicates in the candidate list). *)
  let singleton_cost = Array.make nprops infinity in
  let singleton_idx = Array.make nprops (-1) in
  let pair_cost = Hashtbl.create 64 in
  Array.iteri
    (fun i (props, cost) ->
      match Array.map (fun p -> Hashtbl.find_opt prop_ids p) props with
      | [| Some a |] ->
          if cost < singleton_cost.(a) then begin
            singleton_cost.(a) <- cost;
            singleton_idx.(a) <- i
          end
      | [| Some a; Some b |] ->
          let key = (min a b, max a b) in
          let keep =
            match Hashtbl.find_opt pair_cost key with
            | Some (c, _) -> cost < c
            | None -> true
          in
          if keep then Hashtbl.replace pair_cost key (cost, i)
      | _ -> () (* classifiers with foreign or 3+ properties are irrelevant *))
    t.classifiers;
  let forced = Array.make nprops false in
  let infeasible = ref false in
  let edge_list = ref [] in
  let seen_edges = Hashtbl.create 64 in
  Array.iter
    (fun q ->
      match Array.map (fun p -> Hashtbl.find prop_ids p) q with
      | [| a |] ->
          if singleton_cost.(a) >= infinite_cost || singleton_cost.(a) = infinity then
            infeasible := true
          else forced.(a) <- true
      | [| a; b |] ->
          let key = (min a b, max a b) in
          if not (Hashtbl.mem seen_edges key) then begin
            Hashtbl.add seen_edges key ();
            edge_list := key :: !edge_list
          end
      | [||] -> ()
      | _ -> assert false)
    t.queries;
  (* Pair queries whose pair classifier is unavailable force both
     singletons. *)
  List.iter
    (fun (a, b) ->
      let pc = match Hashtbl.find_opt pair_cost (a, b) with Some (c, _) -> c | None -> infinity in
      if pc >= infinite_cost || pc = infinity then begin
        List.iter
          (fun v ->
            if singleton_cost.(v) = infinity || singleton_cost.(v) >= infinite_cost then
              infeasible := true
            else forced.(v) <- true)
          [ a; b ]
      end)
    !edge_list;
  if !infeasible then None
  else begin
    (* Closure nodes: 0..nprops-1 singleton machines, then one project
       node per edge that still has a choice. *)
    let open_edges =
      List.filter
        (fun (a, b) ->
          not (forced.(a) && forced.(b))
          &&
          match Hashtbl.find_opt pair_cost (a, b) with
          | Some (c, _) -> c < infinite_cost
          | None -> false)
        !edge_list
    in
    let nedges = List.length open_edges in
    let weights = Array.make (nprops + nedges) 0.0 in
    for v = 0 to nprops - 1 do
      if forced.(v) then weights.(v) <- 0.0
      else if singleton_cost.(v) = infinity || singleton_cost.(v) >= infinite_cost then
        weights.(v) <- -.infinite_cost
      else weights.(v) <- -.singleton_cost.(v)
    done;
    let arcs = ref [] in
    List.iteri
      (fun e (a, b) ->
        let pc = fst (Hashtbl.find pair_cost (a, b)) in
        (* Cap the profit: beyond the cost of buying both endpoints the
           project is always worth selecting, so the argmax is unchanged. *)
        let cap =
          let c v = if forced.(v) then 0.0 else min singleton_cost.(v) infinite_cost in
          c a +. c b +. 1.0
        in
        weights.(nprops + e) <- min pc cap;
        if not forced.(a) then arcs := (nprops + e, a) :: !arcs;
        if not forced.(b) then arcs := (nprops + e, b) :: !arcs)
      open_edges;
    let _, sel = Bcc_graph.Closure.solve ~weights ~edges:!arcs in
    let selected v = forced.(v) || sel.(v) in
    let chosen = ref [] in
    for v = 0 to nprops - 1 do
      if selected v then chosen := singleton_idx.(v) :: !chosen
    done;
    List.iter
      (fun (a, b) ->
        if not (selected a && selected b) then begin
          match Hashtbl.find_opt pair_cost (a, b) with
          | Some (c, i) when c < infinite_cost -> chosen := i :: !chosen
          | _ -> assert false (* would have been forced *)
        end)
      !edge_list;
    let chosen = List.sort_uniq compare !chosen in
    Some { cost = solution_cost t chosen; chosen }
  end

(* ------------------------------------------------------------------ *)
(* Greedy set cover over (query, property) incidence elements.         *)
(* ------------------------------------------------------------------ *)

let subsets_of q =
  let n = Array.length q in
  let out = ref [] in
  for mask = 1 to (1 lsl n) - 1 do
    let members = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then members := q.(i) :: !members
    done;
    out := Array.of_list !members :: !out
  done;
  !out

let solve_greedy t =
  let nq = Array.length t.queries in
  (* Element ids: prefix-sum offsets per query. *)
  let offsets = Array.make (nq + 1) 0 in
  for i = 0 to nq - 1 do
    offsets.(i + 1) <- offsets.(i) + Array.length t.queries.(i)
  done;
  let universe = offsets.(nq) in
  (* Map a property set to the classifier indices that realize it. *)
  let by_props : (int array, int) Hashtbl.t = Hashtbl.create (Array.length t.classifiers) in
  Array.iteri
    (fun i (props, cost) ->
      if cost < infinite_cost then begin
        match Hashtbl.find_opt by_props props with
        | Some j when snd t.classifiers.(j) <= cost -> ()
        | _ -> Hashtbl.replace by_props props i
      end)
    t.classifiers;
  (* For each classifier, the incidence elements it covers. *)
  let elements = Array.make (Array.length t.classifiers) [] in
  Array.iteri
    (fun qi q ->
      List.iter
        (fun sub ->
          match Hashtbl.find_opt by_props sub with
          | None -> ()
          | Some ci ->
              (* Elements covered: positions of [sub]'s properties in q. *)
              Array.iteri
                (fun pos p ->
                  ignore pos;
                  let rec find lo hi =
                    if lo > hi then assert false
                    else begin
                      let mid = (lo + hi) / 2 in
                      if q.(mid) = p then mid
                      else if q.(mid) < p then find (mid + 1) hi
                      else find lo (mid - 1)
                    end
                  in
                  let j = find 0 (Array.length q - 1) in
                  elements.(ci) <- (offsets.(qi) + j) :: elements.(ci))
                sub)
        (subsets_of q))
    t.queries;
  let sets =
    Array.mapi (fun i (_, cost) -> (Array.of_list elements.(i), cost)) t.classifiers
  in
  match Set_cover.solve ~universe ~sets with
  | None -> None
  | Some { cost = _; sets = chosen } ->
      let chosen = List.sort_uniq compare chosen in
      Some { cost = solution_cost t chosen; chosen }

let solve t =
  if max_query_length t <= 2 then solve_exact_l2 t
  else solve_greedy t

let brute_force t =
  let n = Array.length t.classifiers in
  let best = ref None in
  let rec go i acc_cost acc =
    let bound = match !best with Some { cost; _ } -> cost | None -> infinity in
    if acc_cost < bound then begin
      if i >= n then begin
        if covers t acc then best := Some { cost = acc_cost; chosen = List.rev acc }
      end
      else begin
        let cost = snd t.classifiers.(i) in
        if cost < infinite_cost then go (i + 1) (acc_cost +. cost) (i :: acc);
        go (i + 1) acc_cost acc
      end
    end
  in
  go 0 0.0 [];
  !best
