module Instance = Bcc_core.Instance
module Propset = Bcc_core.Propset
module Rng = Bcc_util.Rng

type params = {
  num_queries : int;
  num_properties : int;
  max_length : int;
  cost_lo : float;
  cost_hi : float;
  utility_lo : float;
  utility_hi : float;
}

let default_params =
  {
    num_queries = 100_000;
    num_properties = 10_000;
    max_length = 6;
    cost_lo = 0.0;
    cost_hi = 50.0;
    utility_lo = 1.0;
    utility_hi = 50.0;
  }

(* Geometric length: P(i) = 1/2^i, redrawn above the cap. *)
let rec draw_length rng max_length =
  let rec flips i = if i >= 30 || Rng.bool rng then i else flips (i + 1) in
  let len = 1 + flips 0 in
  if len > max_length then draw_length rng max_length else len

let generate ?(params = default_params) ~seed ~budget () =
  let rng = Rng.create seed in
  let queries =
    Array.init params.num_queries (fun _ ->
        let len = draw_length rng params.max_length in
        let props = Rng.sample_without_replacement rng len params.num_properties in
        let u =
          float_of_int
            (Rng.int_in rng (int_of_float params.utility_lo) (int_of_float params.utility_hi))
        in
        (Propset.of_array props, u))
  in
  let cost = Costs.hashed_uniform ~seed:(seed lxor 0x51DE) ~lo:params.cost_lo ~hi:params.cost_hi in
  Instance.create ~name:"synthetic" ~budget ~queries ~cost ()
