(** Deterministic cost oracles for generated datasets.

    Instance construction takes a pure [Propset.t -> float] oracle; these
    helpers derive stable pseudo-random costs from a hash of the
    property set and a seed, so regenerating a dataset from the same
    seed yields identical costs for every classifier. *)

val uniform : float -> Bcc_core.Propset.t -> float
(** Constant cost for every classifier (the BestBuy setting: no cost
    data published, so uniform costs are assumed — Section 6.1). *)

val hashed_uniform :
  seed:int -> lo:float -> hi:float -> Bcc_core.Propset.t -> float
(** Uniform integer cost in [lo, hi] derived from the set's hash. *)

val hashed_skewed :
  seed:int -> mean:float -> cap:float -> Bcc_core.Propset.t -> float
(** Exponentially distributed integer cost with the given mean, capped —
    matches the Private dataset's "range [0, 50], average roughly 8". *)

val subadditive :
  seed:int -> singleton:(Bcc_core.Propset.t -> float) -> discount:float ->
  Bcc_core.Propset.t -> float
(** Costs for longer classifiers: [discount] times the sum of the
    member singleton costs, jittered by the set hash — capturing that a
    conjunction classifier ("wooden table") tends to cost less than its
    parts because the feature space is narrower (Example 1.1). *)
