lib/data/io.ml: Array Bcc_core Filename Fun List Printf String
