lib/data/synthetic.mli: Bcc_core
