lib/data/synthetic.ml: Array Bcc_core Bcc_util Costs
