lib/data/io.mli: Bcc_core
