lib/data/log_parser.ml: Array Bcc_core Costs Filename Fun Hashtbl List String
