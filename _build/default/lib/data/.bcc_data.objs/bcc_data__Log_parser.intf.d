lib/data/log_parser.mli: Bcc_core
