lib/data/workload_stats.ml: Array Bcc_core Format
