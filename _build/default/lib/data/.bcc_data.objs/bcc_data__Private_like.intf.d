lib/data/private_like.mli: Bcc_core
