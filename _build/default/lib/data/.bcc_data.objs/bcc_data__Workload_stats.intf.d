lib/data/workload_stats.mli: Bcc_core Format
