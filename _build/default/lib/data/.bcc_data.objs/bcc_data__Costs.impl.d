lib/data/costs.ml: Bcc_core Bcc_util Float
