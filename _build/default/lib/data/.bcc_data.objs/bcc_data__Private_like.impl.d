lib/data/private_like.ml: Array Bcc_core Bcc_util Costs Float Hashtbl List
