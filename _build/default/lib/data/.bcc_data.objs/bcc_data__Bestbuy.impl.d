lib/data/bestbuy.ml: Array Bcc_core Bcc_util Costs Float Hashtbl
