lib/data/bestbuy.mli: Bcc_core
