lib/data/costs.mli: Bcc_core
