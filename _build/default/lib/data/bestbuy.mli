(** The BestBuy-like (BB) dataset generator.

    The public BestBuy workload used by the paper (and by [18, 23]) is
    not redistributable and no network access is available here, so this
    generator reproduces every statistic the paper reports about it
    (Section 6.1):

    - roughly 1000 queries over 725 distinct properties
      (electronics-domain);
    - average query length 1.4; 65 % of queries of length 1 and more
      than 95 % of length at most 2;
    - utility = the query's search count — Zipf-distributed popularity;
    - no published classifier costs, hence uniform costs;
    - very sparse: each property appears in only a couple of queries. *)

type params = {
  num_queries : int;
  num_properties : int;
  len1_fraction : float;
  len2_fraction : float;  (** remainder is length 3 *)
  zipf_exponent : float;
  max_search_count : float;
}

val default_params : params

val generate : ?params:params -> seed:int -> budget:float -> unit -> Bcc_core.Instance.t
