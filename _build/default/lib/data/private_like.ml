module Instance = Bcc_core.Instance
module Propset = Bcc_core.Propset
module Rng = Bcc_util.Rng
module Zipf = Bcc_util.Zipf

type params = {
  num_queries : int;
  num_properties : int;
  num_anchors : int;
  cost_mean : float;
  cost_cap : float;
  free_classifier_fraction : float;
  utility_cap : float;
}

let default_params =
  {
    num_queries = 5000;
    num_properties = 2000;
    num_anchors = 600;
    cost_mean = 8.0;
    cost_cap = 50.0;
    free_classifier_fraction = 0.03;
    utility_cap = 50.0;
  }

let generate ?(params = default_params) ~seed ~budget () =
  let rng = Rng.create seed in
  let prop_zipf = Zipf.create ~s:0.9 params.num_properties in
  let draw_props len =
    let seen = Hashtbl.create 4 in
    let rec go acc k =
      if k = 0 then acc
      else begin
        let p = Zipf.sample prop_zipf rng in
        if Hashtbl.mem seen p then go acc k
        else begin
          Hashtbl.add seen p ();
          go (p :: acc) (k - 1)
        end
      end
    in
    go [] len
  in
  let clamp_utility u = Float.round (min params.utility_cap (max 1.0 u)) in
  let queries = ref [] in
  let emit q u = queries := (q, clamp_utility u) :: !queries in
  (* Anchor families: a popular conjunction of length 2-5 plus its
     length-1 and length-2 subqueries with correlated (higher)
     popularity — subqueries are more general, hence searched more. *)
  let emitted = ref 0 in
  let anchor_rank = Zipf.create ~s:1.0 params.num_anchors in
  for a = 0 to params.num_anchors - 1 do
    if !emitted < params.num_queries then begin
      let len = 2 + Rng.int rng 4 (* 2..5 *) in
      let props = draw_props len in
      let anchor = Propset.of_list props in
      let base = 5.0 +. (300.0 *. Zipf.weight anchor_rank a) in
      emit anchor base;
      incr emitted;
      (* Singleton subqueries. *)
      List.iter
        (fun p ->
          if !emitted < params.num_queries && Rng.float rng 1.0 < 0.8 then begin
            emit (Propset.singleton p) (base *. (1.5 +. Rng.float rng 1.5));
            incr emitted
          end)
        props;
      (* A couple of length-2 subqueries. *)
      let pairs = ref [] in
      List.iteri
        (fun i p -> List.iteri (fun j q -> if i < j then pairs := (p, q) :: !pairs) props)
        props;
      List.iteri
        (fun i (p, q) ->
          if i < 2 && !emitted < params.num_queries && Rng.float rng 1.0 < 0.7 then begin
            emit (Propset.of_list [ p; q ]) (base *. (1.2 +. Rng.float rng 1.0));
            incr emitted
          end)
        !pairs
    end
  done;
  (* Fill the remainder with independent queries at the published length
     mix (55 % length 1, >95 % length <= 2). *)
  while !emitted < params.num_queries do
    let r = Rng.float rng 1.0 in
    let len =
      if r < 0.55 then 1
      else if r < 0.95 then 2
      else if r < 0.98 then 3
      else if r < 0.995 then 4
      else 5
    in
    emit (Propset.of_list (draw_props len)) (1.0 +. Rng.float rng 30.0);
    incr emitted
  done;
  let singleton_cost =
    Costs.hashed_skewed ~seed:(seed lxor 0x9A1) ~mean:params.cost_mean ~cap:params.cost_cap
  in
  let base_cost =
    Costs.subadditive ~seed:(seed lxor 0x5AB) ~singleton:singleton_cost ~discount:0.5
  in
  let cost c =
    (* A small fraction of classifiers already exist (cost 0). *)
    let h = Rng.create ((Propset.hash c * 31) lxor seed lxor 0xF4EE) in
    if Rng.float h 1.0 < params.free_classifier_fraction then 0.0
    else min (base_cost c) params.cost_cap
  in
  Instance.create ~name:"private-like" ~budget ~queries:(Array.of_list !queries) ~cost ()
