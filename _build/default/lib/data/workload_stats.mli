(** Workload shape statistics — used by tests to assert that the
    generators reproduce the statistics the paper reports (Section 6.1)
    and by the CLI's [stats] command. *)

type t = {
  num_queries : int;
  num_properties : int;
  num_classifiers : int;
  max_length : int;
  avg_length : float;
  length_fractions : float array;  (** index [i] = fraction of queries of length i+1 *)
  total_utility : float;
  avg_cost : float;
  zero_cost_classifiers : int;
}

val compute : Bcc_core.Instance.t -> t
val pp : Format.formatter -> t -> unit
