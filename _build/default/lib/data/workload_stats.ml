module Instance = Bcc_core.Instance
module Propset = Bcc_core.Propset

type t = {
  num_queries : int;
  num_properties : int;
  num_classifiers : int;
  max_length : int;
  avg_length : float;
  length_fractions : float array;
  total_utility : float;
  avg_cost : float;
  zero_cost_classifiers : int;
}

let compute inst =
  let nq = Instance.num_queries inst in
  let max_length = Instance.max_length inst in
  let counts = Array.make (max max_length 1) 0 in
  let total_len = ref 0 in
  for qi = 0 to nq - 1 do
    let len = Propset.length (Instance.query inst qi) in
    counts.(len - 1) <- counts.(len - 1) + 1;
    total_len := !total_len + len
  done;
  let ncl = Instance.num_classifiers inst in
  let cost_sum = ref 0.0 and zero = ref 0 in
  for id = 0 to ncl - 1 do
    let c = Instance.cost inst id in
    cost_sum := !cost_sum +. c;
    if c <= 0.0 then incr zero
  done;
  {
    num_queries = nq;
    num_properties = Instance.num_properties inst;
    num_classifiers = ncl;
    max_length;
    avg_length = (if nq = 0 then 0.0 else float_of_int !total_len /. float_of_int nq);
    length_fractions =
      Array.map (fun c -> if nq = 0 then 0.0 else float_of_int c /. float_of_int nq) counts;
    total_utility = Instance.total_utility inst;
    avg_cost = (if ncl = 0 then 0.0 else !cost_sum /. float_of_int ncl);
    zero_cost_classifiers = !zero;
  }

let pp fmt t =
  Format.fprintf fmt
    "@[<v>queries: %d@ properties: %d@ classifiers: %d (%d free)@ max length: %d@ avg \
     length: %.2f@ total utility: %g@ avg classifier cost: %.2f@ length mix:"
    t.num_queries t.num_properties t.num_classifiers t.zero_cost_classifiers t.max_length
    t.avg_length t.total_utility t.avg_cost;
  Array.iteri
    (fun i f -> Format.fprintf fmt "@ %d: %.1f%%" (i + 1) (100.0 *. f))
    t.length_fractions;
  Format.fprintf fmt "@]"
