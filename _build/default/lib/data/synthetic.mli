(** The Synthetic (S) dataset generator — the exact recipe of
    Section 6.1:

    - query length [i] with probability [1/2^i], lengths above 6
      redrawn (companies do not target such rare queries);
    - properties drawn uniformly from a pool;
    - utilities: integers uniform in [1, 50];
    - classifier costs: integers uniform in [0, 50] (stable per
      classifier via a hashed oracle);
    - the dataset is regenerated (new seed) for each experiment. *)

type params = {
  num_queries : int;
  num_properties : int;
  max_length : int;
  cost_lo : float;
  cost_hi : float;
  utility_lo : float;
  utility_hi : float;
}

val default_params : params
(** 100_000 queries over 10_000 properties, as in the paper (benches
    scale [num_queries] down; EXPERIMENTS.md records the scaling). *)

val generate : ?params:params -> seed:int -> budget:float -> unit -> Bcc_core.Instance.t
