module Instance = Bcc_core.Instance
module Propset = Bcc_core.Propset
module Rng = Bcc_util.Rng
module Zipf = Bcc_util.Zipf

type params = {
  num_queries : int;
  num_properties : int;
  len1_fraction : float;
  len2_fraction : float;
  zipf_exponent : float;
  max_search_count : float;
}

let default_params =
  {
    num_queries = 1000;
    num_properties = 725;
    len1_fraction = 0.65;
    len2_fraction = 0.30;
    zipf_exponent = 0.5;
    max_search_count = 1000.0;
  }

let generate ?(params = default_params) ~seed ~budget () =
  let rng = Rng.create seed in
  (* A mild Zipf over properties keeps the workload sparse (most
     properties recur only once or twice) while letting a few popular
     properties connect queries. *)
  let prop_zipf = Zipf.create ~s:params.zipf_exponent params.num_properties in
  let draw_props len =
    let seen = Hashtbl.create 4 in
    let rec go acc k =
      if k = 0 then acc
      else begin
        let p = Zipf.sample prop_zipf rng in
        if Hashtbl.mem seen p then go acc k
        else begin
          Hashtbl.add seen p ();
          go (p :: acc) (k - 1)
        end
      end
    in
    go [] len
  in
  let popularity = Zipf.create ~s:1.0 params.num_queries in
  let queries =
    Array.init params.num_queries (fun i ->
        let r = Rng.float rng 1.0 in
        let len =
          if r < params.len1_fraction then 1
          else if r < params.len1_fraction +. params.len2_fraction then 2
          else 3
        in
        (* Search count: Zipf weight of the query's popularity rank,
           scaled to [1, max_search_count]. *)
        let count =
          Float.round (max 1.0 (params.max_search_count *. Zipf.weight popularity i))
        in
        (Propset.of_list (draw_props len), count))
  in
  Instance.create ~name:"bestbuy" ~budget ~queries ~cost:(Costs.uniform 1.0) ()
