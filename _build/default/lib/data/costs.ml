module Propset = Bcc_core.Propset
module Rng = Bcc_util.Rng

let hash_stream ~seed c =
  (* One-off generator keyed by (seed, set) — stable across runs. *)
  Rng.create ((Propset.hash c * 0x9E3779B1) lxor seed)

let uniform cost _ = cost

let hashed_uniform ~seed ~lo ~hi c =
  let rng = hash_stream ~seed c in
  float_of_int (Rng.int_in rng (int_of_float lo) (int_of_float hi))

let hashed_skewed ~seed ~mean ~cap c =
  let rng = hash_stream ~seed c in
  let u = Rng.float rng 1.0 in
  let x = -.mean *. log (max (1.0 -. u) 1e-12) in
  Float.round (min x cap)

let subadditive ~seed ~singleton ~discount c =
  if Propset.length c <= 1 then singleton c
  else begin
    let base = Propset.fold (fun acc p -> acc +. singleton (Propset.singleton p)) 0.0 c in
    let rng = hash_stream ~seed c in
    let jitter = 0.8 +. Rng.float rng 0.4 in
    Float.round (max 1.0 (discount *. base *. jitter))
  end
