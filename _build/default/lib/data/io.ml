module Instance = Bcc_core.Instance
module Propset = Bcc_core.Propset
module Symtab = Bcc_core.Symtab

let prop_name inst p =
  match Instance.names inst with
  | Some tbl -> Symtab.name tbl p
  | None -> string_of_int p

let save path inst =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# bcc instance %s\n" (Instance.name inst);
      Printf.fprintf oc "budget %.9g\n" (Instance.budget inst);
      for qi = 0 to Instance.num_queries inst - 1 do
        let q = Instance.query inst qi in
        let names = List.map (prop_name inst) (Propset.to_list q) in
        Printf.fprintf oc "query %s %.9g\n" (String.concat ";" names)
          (Instance.utility inst qi)
      done;
      for id = 0 to Instance.num_classifiers inst - 1 do
        let c = Instance.classifier inst id in
        let names = List.map (prop_name inst) (Propset.to_list c) in
        Printf.fprintf oc "classifier %s %.9g\n" (String.concat ";" names)
          (Instance.cost inst id)
      done)

let load path =
  let ic = open_in path in
  let names = Symtab.create () in
  let budget = ref 0.0 in
  let queries = ref [] in
  let costs = Propset.Tbl.create 256 in
  let parse_props s =
    Propset.of_list (List.map (Symtab.intern names) (String.split_on_char ';' s))
  in
  let parse_float what s =
    match float_of_string_opt s with
    | Some f -> f
    | None -> if s = "inf" then infinity else failwith ("Io.load: bad " ^ what ^ ": " ^ s)
  in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then begin
             match String.split_on_char ' ' line with
             | [ "budget"; b ] -> budget := parse_float "budget" b
             | [ "query"; props; u ] ->
                 queries := (parse_props props, parse_float "utility" u) :: !queries
             | [ "classifier"; props; c ] ->
                 Propset.Tbl.replace costs (parse_props props) (parse_float "cost" c)
             | _ -> failwith ("Io.load: malformed line: " ^ line)
           end
         done
       with End_of_file -> ());
      let cost c =
        match Propset.Tbl.find_opt costs c with Some x -> x | None -> infinity
      in
      Instance.create
        ~name:(Filename.remove_extension (Filename.basename path))
        ~names ~budget:!budget
        ~queries:(Array.of_list (List.rev !queries))
        ~cost ())

module Solution = Bcc_core.Solution

let save_solution path inst (sol : Solution.t) =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "# bcc solution for instance %s\n" (Instance.name inst);
      Printf.fprintf oc "# cost %.9g utility %.9g\n" sol.Solution.cost sol.Solution.utility;
      List.iter
        (fun c ->
          let names = List.map (prop_name inst) (Propset.to_list c) in
          Printf.fprintf oc "select %s %.9g\n" (String.concat ";" names)
            (Instance.cost_of inst c))
        sol.Solution.classifiers)

let load_solution inst path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let name_to_id =
        match Instance.names inst with
        | Some tbl -> fun s -> (
            match Symtab.find tbl s with
            | Some id -> id
            | None -> failwith ("Io.load_solution: unknown property " ^ s))
        | None -> fun s -> (
            match int_of_string_opt s with
            | Some id -> id
            | None -> failwith ("Io.load_solution: unknown property " ^ s))
      in
      let sets = ref [] in
      (try
         while true do
           let line = String.trim (input_line ic) in
           if line <> "" && line.[0] <> '#' then begin
             match String.split_on_char ' ' line with
             | [ "select"; props; _cost ] ->
                 let set =
                   Propset.of_list
                     (List.map name_to_id (String.split_on_char ';' props))
                 in
                 if Instance.classifier_id inst set = None then
                   failwith "Io.load_solution: classifier not in the instance universe";
                 sets := set :: !sets
             | _ -> failwith ("Io.load_solution: malformed line: " ^ line)
           end
         done
       with End_of_file -> ());
      Solution.of_sets inst !sets)
