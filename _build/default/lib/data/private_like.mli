(** The Private-like (P) dataset generator.

    The paper's Private dataset (5K priority queries from a large
    e-commerce company's Q1-2021 search logs) is proprietary; this
    generator reproduces every statistic the paper publishes about it
    (Sections 6.1–6.2):

    - 5K queries over 2K distinct properties, lengths 1–5;
    - 55 % of the queries of length 1, more than 95 % of length at most
      2;
    - classifier costs in [0, 50] with average around 8 (skewed), a few
      already-constructed classifiers at cost 0, conjunction classifiers
      slightly cheaper than the sum of their parts (Example 1.1);
    - analyst utility scores scaled into [1, 50], combining category
      importance and search frequency;
    - the structural property the paper highlights: {e popular queries
      have popular subqueries} ("black Adidas shoes" implies "Adidas
      shoes" and "black shoes") — realized by generating popular anchor
      conjunctions and then emitting their subqueries with correlated
      utilities. *)

type params = {
  num_queries : int;
  num_properties : int;
  num_anchors : int;  (** popular long conjunctions seeding subquery families *)
  cost_mean : float;
  cost_cap : float;
  free_classifier_fraction : float;
  utility_cap : float;
}

val default_params : params
val generate : ?params:params -> seed:int -> budget:float -> unit -> Bcc_core.Instance.t
