(** Heuristic adaptations of the procedures from Taylor's QK algorithm
    ([A^QK_T], Lemma 4.6), kept as ablation baselines.

    The paper's worst-case algorithm runs three procedures on normalized
    bipartite graphs and keeps the best: [P1] (top-degree selection on
    each side), [P2] (blow-up + DkS — in this library that role is
    played by {!Qk.solve}'s main pipeline), and [P3] (the best star:
    one high-degree centre plus as many neighbours as the budget
    allows).  Here [P1] and [P3] are generalized to arbitrary
    cost-weighted graphs so they can serve as standalone baselines. *)

val degree_greedy : Qk.instance -> Qk.solution
(** [P1]-style: repeatedly take the node with the best
    weighted-degree-to-cost ratio that still fits, then prune selected
    nodes that ended up contributing nothing. *)

val best_star : ?max_centers:int -> Qk.instance -> Qk.solution
(** [P3]-style: for each candidate centre [v] (the [max_centers]
    highest-weighted-degree nodes, default 200), select [v] and then its
    neighbours in decreasing [w(u,v)/cost(u)] order while the budget
    lasts; return the best star found. *)

val combined : Qk.instance -> Qk.solution
(** Best of {!degree_greedy} and {!best_star} — the ablation contender
    representing [A^QK_T] without the blow-up machinery. *)

val full : Qk.instance -> Qk.solution
(** The complete worst-case algorithm of Lemma 4.6:

    + normalize — rescale edge weights by [n^2 / w_max], drop the
      (cumulatively negligible) edges below 1, round weights down and
      costs up to powers of two, rescale costs by [n / B];
    + partition the edges into classes [G_{i,j,t}] by endpoint-cost
      exponents [i >= j] and weight exponent [t];
    + solve each class: a DkS instance (cardinality [B'/2^i]) when
      [i = j]; the bipartite procedures [P1] (top-degree selection),
      [P2] (blow-up DkS — the copies are implicit multiplicities) and
      [P3] (best star) when [i > j];
    + return the best class solution, re-evaluated and budget-trimmed
      against the {e original} costs and weights.

    Quality is worst-case-oriented ([O(n^{1/3})] in theory); the
    heuristic {!Qk.solve} dominates it on realistic inputs — that
    contrast is exactly the paper's motivation for [A^QK_H], reproduced
    by the abl-hks bench. *)
