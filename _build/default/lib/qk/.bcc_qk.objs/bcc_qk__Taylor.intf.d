lib/qk/taylor.mli: Qk
