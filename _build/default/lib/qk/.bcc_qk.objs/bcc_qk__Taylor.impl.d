lib/qk/taylor.ml: Array Bcc_dks Bcc_graph Hashtbl List Option Qk
