lib/qk/qk.mli: Bcc_graph
