lib/qk/qk.ml: Array Bcc_dks Bcc_graph Bcc_util List Seq
