module Graph = Bcc_graph.Graph

let degree_greedy (inst : Qk.instance) =
  let g = inst.graph in
  let n = Graph.n g in
  let order = Array.init n (fun i -> i) in
  let score v =
    let c = Graph.node_cost g v in
    let d = Graph.weighted_degree g v in
    if c <= 1e-12 then if d > 0.0 then infinity else 0.0 else d /. c
  in
  Array.sort (fun a b -> compare (score b) (score a)) order;
  let sel = Array.make n false in
  let remaining = ref inst.budget in
  Array.iter
    (fun v ->
      let c = Graph.node_cost g v in
      if c <= !remaining +. 1e-12 && score v > 0.0 then begin
        sel.(v) <- true;
        remaining := !remaining -. c
      end)
    order;
  (* Drop selected nodes with no selected neighbour: they pay cost for
     nothing. *)
  let contributes v =
    Graph.fold_neighbors g v (fun acc u _ -> acc || sel.(u)) false
  in
  for v = 0 to n - 1 do
    if sel.(v) && Graph.node_cost g v > 0.0 && not (contributes v) then sel.(v) <- false
  done;
  let nodes = ref [] in
  for v = n - 1 downto 0 do
    if sel.(v) then nodes := v :: !nodes
  done;
  Qk.evaluate inst !nodes

let best_star ?(max_centers = 200) (inst : Qk.instance) =
  let g = inst.graph in
  let n = Graph.n g in
  let centers = Array.init n (fun i -> i) in
  Array.sort
    (fun a b -> compare (Graph.weighted_degree g b) (Graph.weighted_degree g a))
    centers;
  let best = ref (Qk.evaluate inst []) in
  let try_center v =
    let c = Graph.node_cost g v in
    if c <= inst.budget +. 1e-12 then begin
      let neighbours = Graph.fold_neighbors g v (fun acc u w -> (u, w) :: acc) [] in
      let ratio (u, w) =
        let cu = Graph.node_cost g u in
        if cu <= 1e-12 then infinity else w /. cu
      in
      let neighbours =
        List.sort (fun a b -> compare (ratio b) (ratio a)) neighbours
      in
      let remaining = ref (inst.budget -. c) in
      let chosen = ref [ v ] in
      List.iter
        (fun (u, w) ->
          let cu = Graph.node_cost g u in
          if w > 0.0 && cu <= !remaining +. 1e-12 then begin
            chosen := u :: !chosen;
            remaining := !remaining -. cu
          end)
        neighbours;
      let sol = Qk.evaluate inst !chosen in
      if sol.value > !best.value then best := sol
    end
  in
  Array.iteri (fun i v -> if i < max_centers then try_center v) centers;
  !best

let combined inst =
  let a = degree_greedy inst and b = best_star inst in
  if a.value >= b.value then a else b

module Hks = Bcc_dks.Hks

(* Trim a candidate node set to the true budget (most expensive first),
   then evaluate against the original instance. *)
let evaluate_trimmed (inst : Qk.instance) nodes =
  let g = inst.Qk.graph in
  let nodes = List.sort_uniq compare nodes in
  let cost = ref (List.fold_left (fun acc v -> acc +. Graph.node_cost g v) 0.0 nodes) in
  let by_cost_desc =
    List.sort (fun a b -> compare (Graph.node_cost g b) (Graph.node_cost g a)) nodes
  in
  let kept =
    List.filter
      (fun v ->
        if !cost > inst.Qk.budget +. 1e-9 then begin
          cost := !cost -. Graph.node_cost g v;
          false
        end
        else true)
      by_cost_desc
  in
  Qk.evaluate inst kept

let log2_ceil x = max 0 (int_of_float (ceil (log x /. log 2.0)))

let full (inst : Qk.instance) =
  let g = inst.Qk.graph in
  let n = Graph.n g in
  let budget = inst.Qk.budget in
  if n = 0 || budget <= 0.0 then Qk.evaluate inst []
  else begin
    let affordable v = Graph.node_cost g v <= budget +. 1e-12 in
    (* Normalization: weights scaled by n^2 / w_max, edges below 1
       dropped, weights rounded down to powers of 2; costs scaled by
       n / B, rounded up to powers of 2; scaled budget n. *)
    let w_max = ref 0.0 in
    Graph.iter_edges g (fun u v w ->
        if affordable u && affordable v && w > !w_max then w_max := w);
    if !w_max <= 0.0 then Qk.evaluate inst []
    else begin
      let nf = float_of_int n in
      let w_scale = nf *. nf /. !w_max in
      let c_scale = nf /. budget in
      let scaled_budget = nf in
      (* Edge classes: (i, j, t) with i >= j. *)
      let classes : (int * int * int, (int * int) list ref) Hashtbl.t = Hashtbl.create 64 in
      let cost_exp v = log2_ceil (max 1.0 (Graph.node_cost g v *. c_scale)) in
      Graph.iter_edges g (fun u v w ->
          if affordable u && affordable v then begin
            let sw = w *. w_scale in
            if sw >= 1.0 then begin
              let t = int_of_float (floor (log sw /. log 2.0)) in
              let iu = cost_exp u and iv = cost_exp v in
              let i = max iu iv and j = min iu iv in
              let key = (i, j, t) in
              let edge = if iu >= iv then (u, v) else (v, u) in
              match Hashtbl.find_opt classes key with
              | Some cell -> cell := edge :: !cell
              | None -> Hashtbl.add classes key (ref [ edge ])
            end
          end);
      let best = ref (Qk.evaluate inst []) in
      let consider nodes =
        let sol = evaluate_trimmed inst nodes in
        if sol.Qk.value > !best.Qk.value then best := sol
      in
      Hashtbl.iter
        (fun (i, j, _) cell ->
          let edges = !cell in
          (* Node set of the class, split into the expensive side (cost
             exponent i, first components) and the cheap side (j). *)
          let members = Hashtbl.create 16 in
          List.iter
            (fun (u, v) ->
              Hashtbl.replace members u ();
              Hashtbl.replace members v ())
            edges;
          let budget_ticks = int_of_float scaled_budget in
          if i = j then begin
            (* Uniform costs: a DkS instance with k = B' / 2^i. *)
            let k = max 1 (budget_ticks / (1 lsl i)) in
            let b = Graph.builder n in
            List.iter (fun (u, v) -> Graph.add_edge b u v 1.0) edges;
            let sub = Graph.build b in
            let sel = Hks.solve (Hks.make sub ~k) in
            let nodes = ref [] in
            Array.iteri (fun v t -> if t > 0 then nodes := v :: !nodes) sel;
            consider (List.filter (Hashtbl.mem members) !nodes)
          end
          else begin
            (* Bipartite class: expensive side R (2^i), cheap side L
               (2^j).  Degrees within the class only. *)
            let deg = Hashtbl.create 16 in
            let bump v =
              Hashtbl.replace deg v (1 + Option.value ~default:0 (Hashtbl.find_opt deg v))
            in
            List.iter
              (fun (r, l) ->
                bump r;
                bump l)
              edges;
            let degree v = Option.value ~default:0 (Hashtbl.find_opt deg v) in
            let r_side = List.sort_uniq compare (List.map fst edges) in
            let l_side = List.sort_uniq compare (List.map snd edges) in
            let w_ratio = 1 lsl (i - j) in
            (* P1: top B'/(2 * 2^i) R nodes by degree, then top B'/(2 * 2^j)
               L nodes by degree into the chosen R'. *)
            let take k xs = List.filteri (fun idx _ -> idx < k) xs in
            let by_degree xs = List.sort (fun a b -> compare (degree b) (degree a)) xs in
            let kr = max 1 (budget_ticks / (2 * (1 lsl i))) in
            let r' = take kr (by_degree r_side) in
            let r_set = Hashtbl.create 8 in
            List.iter (fun v -> Hashtbl.replace r_set v ()) r';
            let deg_into v =
              List.fold_left
                (fun acc (r, l) -> if l = v && Hashtbl.mem r_set r then acc + 1 else acc)
                0 edges
            in
            let kl = max 1 (budget_ticks / (2 * (1 lsl j))) in
            let l' =
              take kl
                (List.sort (fun a b -> compare (deg_into b) (deg_into a)) l_side)
            in
            consider (r' @ l');
            (* P3: the best star — highest-degree R node plus its
               neighbours. *)
            (match by_degree r_side with
            | center :: _ ->
                let leaves = List.filter_map (fun (r, l) -> if r = center then Some l else None) edges in
                consider (center :: leaves)
            | [] -> ());
            (* P2: blow-up DkS — R nodes carry multiplicity 2^(i-j). *)
            let mult = Array.make n 1 in
            List.iter (fun v -> mult.(v) <- w_ratio) r_side;
            let b = Graph.builder n in
            List.iter (fun (u, v) -> Graph.add_edge b u v 1.0) edges;
            let sub = Graph.build b in
            let k = max 1 (budget_ticks / (2 * (1 lsl j))) in
            let sel = Hks.solve (Hks.make ~mult sub ~k) in
            let nodes = ref [] in
            Array.iteri (fun v t -> if t > 0 then nodes := v :: !nodes) sel;
            consider (List.filter (Hashtbl.mem members) !nodes)
          end)
        classes;
      !best
    end
  end
