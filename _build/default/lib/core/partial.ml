module Heap = Bcc_util.Heap

type credit = Strict | Linear of float | Threshold of float

let popcount mask =
  let rec go m acc = if m = 0 then acc else go (m lsr 1) (acc + (m land 1)) in
  go mask 0

let credit_value credit ~utility ~covered ~length =
  if length = 0 then 0.0
  else begin
    let f = float_of_int covered /. float_of_int length in
    match credit with
    | Strict -> if covered = length then utility else 0.0
    | Linear alpha ->
        if alpha < 0.0 || alpha > 1.0 then invalid_arg "Partial: Linear factor out of range";
        if covered = length then utility else alpha *. f *. utility
    | Threshold theta ->
        if theta < 0.0 || theta > 1.0 then invalid_arg "Partial: threshold out of range";
        if f +. 1e-12 >= theta then utility else 0.0
  end

let query_credit credit state qi =
  let inst = Cover.instance state in
  credit_value credit
    ~utility:(Instance.utility inst qi)
    ~covered:(popcount (Cover.mask state qi))
    ~length:(Propset.length (Instance.query inst qi))

let credited_utility credit state =
  let inst = Cover.instance state in
  let acc = ref 0.0 in
  for qi = 0 to Instance.num_queries inst - 1 do
    acc := !acc +. query_credit credit state qi
  done;
  !acc

let credited_of credit inst sets =
  let state = Cover.create inst in
  List.iter (fun c -> ignore (Cover.select_set state c)) sets;
  credited_utility credit state

type result = { solution : Solution.t; credited : float }

(* Marginal credited gain of selecting classifier [id] on top of
   [state]. *)
let gain_of credit state id =
  let inst = Cover.instance state in
  let c = Instance.classifier inst id in
  Array.fold_left
    (fun acc qi ->
      let q = Instance.query inst qi in
      let len = Propset.length q in
      let m = Cover.mask state qi in
      let m' = m lor Propset.positions_in c q in
      if m' = m then acc
      else begin
        let u = Instance.utility inst qi in
        acc
        +. credit_value credit ~utility:u ~covered:(popcount m') ~length:len
        -. credit_value credit ~utility:u ~covered:(popcount m) ~length:len
      end)
    0.0
    (Instance.queries_containing inst id)

let greedy credit inst =
  let budget = Instance.budget inst in
  let state = Cover.create inst in
  for id = 0 to Instance.num_classifiers inst - 1 do
    if Instance.cost inst id <= 0.0 then Cover.select state id
  done;
  let n = Instance.num_classifiers inst in
  let heap = Heap.create ~max:true n in
  let prio id =
    let g = gain_of credit state id in
    let c = Instance.cost inst id in
    if c <= 1e-12 then if g > 0.0 then infinity else 0.0 else g /. c
  in
  for id = 0 to n - 1 do
    if not (Cover.is_selected state id) then begin
      let p = prio id in
      if p > 0.0 then Heap.insert heap id p
    end
  done;
  let continue_ = ref true in
  while !continue_ do
    match Heap.pop heap with
    | None -> continue_ := false
    | Some (id, stale) ->
        if Cover.is_selected state id then ()
        else if Instance.cost inst id > budget -. Cover.spent state +. 1e-9 then ()
          (* never affordable again: budgets only shrink *)
        else begin
          (* Threshold credits make gains non-monotone, so re-validate at
             the top of the heap and re-insert when stale. *)
          let fresh = prio id in
          if fresh <= 0.0 then ()
          else if fresh < stale -. 1e-12 then Heap.insert heap id fresh
          else begin
            let affected = Cover.select_traced state id in
            ignore affected;
            (* Exact refresh of the classifiers whose gains the selection
               touched: all subsets of the queries containing [id]. *)
            let inst' = inst in
            Array.iter
              (fun qi ->
                List.iter
                  (fun sub ->
                    match Instance.classifier_id inst' sub with
                    | Some d when (not (Cover.is_selected state d)) && Heap.mem heap d ->
                        Heap.update heap d (prio d)
                    | _ -> ())
                  (Propset.subsets (Instance.query inst' qi)))
              (Instance.queries_containing inst' id)
          end
        end
  done;
  state

let solve ?(credit = Linear 0.5) inst =
  let greedy_state = greedy credit inst in
  let greedy_result =
    {
      solution = Solution.of_ids inst (Cover.selected greedy_state);
      credited = credited_utility credit greedy_state;
    }
  in
  (* Best affordable single classifier (completes the submodular
     guarantee). *)
  let best_single = ref None in
  let state0 = Cover.create inst in
  for id = 0 to Instance.num_classifiers inst - 1 do
    if Instance.cost inst id <= Instance.budget inst then begin
      let g = gain_of credit state0 id in
      match !best_single with
      | Some (_, g') when g' >= g -> ()
      | _ -> best_single := Some (id, g)
    end
  done;
  let single_result =
    match !best_single with
    | Some (id, _) ->
        let sets = [ Instance.classifier inst id ] in
        Some
          {
            solution = Solution.of_sets inst sets;
            credited = credited_of credit inst sets;
          }
    | None -> None
  in
  (* Strict A^BCC is also a valid candidate (credit >= strict utility). *)
  let strict = Solver.solve inst in
  let strict_result =
    { solution = strict; credited = credited_of credit inst strict.Solution.classifiers }
  in
  let best a b = if a.credited >= b.credited then a else b in
  let r = best greedy_result strict_result in
  match single_result with Some s -> best r s | None -> r
