(** Incremental coverage tracking.

    A query [q] is covered by a classifier set [S] iff some subset of
    [S] unions to exactly [q] — equivalently, since only classifiers
    contained in [q] can participate (covers must union {e exactly} to
    [q]), iff the union of the selected classifiers contained in [q]
    equals [q] (Section 2.1, "Covering queries").

    The tracker keeps one bitmask per query (length is at most 6 bits)
    and updates affected queries through the instance's containment
    index when a classifier is selected, so solvers and baselines pay
    only for the queries a selection can actually touch. *)

type t

val create : Instance.t -> t
val clone : t -> t
val instance : t -> Instance.t

val select : t -> int -> unit
(** Select a classifier by id; idempotent. *)

val select_traced : t -> int -> int list
(** Like {!select}, also returning the queries that became covered by
    this selection (needed by the greedy baselines to keep their
    priorities exact). *)

val select_set : t -> Propset.t -> bool
(** Select by property set; [false] if the set is not a (finite-cost)
    classifier of the instance. *)

val is_selected : t -> int -> bool
val selected : t -> int list
(** Selected classifier ids, ascending. *)

val spent : t -> float
(** Total cost of the selection. *)

val is_covered : t -> int -> bool
val mask : t -> int -> int
(** Bitmask over the query's sorted positions marking covered
    properties. *)

val full_mask : t -> int -> int
(** The all-covered mask for the query. *)

val residual : t -> int -> Propset.t
(** Properties of the query not yet covered by selected classifiers
    contained in it — the residual part to cover (Section 4.2,
    Example 4.8). *)

val covered_utility : t -> float
val covered_count : t -> int
val covered_queries : t -> int list
val uncovered_queries : t -> int list

val utility_of_selection : Instance.t -> Propset.t list -> float
(** From-scratch oracle: total utility covered by a classifier list
    (sets not in the universe are ignored). *)
