(** Per-query cover enumeration and the cheapest-cover dynamic program.

    A query's residual (the properties not yet covered by the current
    selection) lives on at most 6 properties, so exact set-cover DP over
    bitmasks is constant-time per query.  These helpers back the IG1
    baseline ("the least costly set of classifiers that covers it, by
    checking all O(1) relevant sets"), the BCC(1)/BCC(2) decomposition
    and the brute-force solver. *)

type candidate = { id : int;  (** classifier id *) bits : int  (** residual positions it covers *) }

val candidates : Cover.t -> ?allowed:(int -> bool) -> int -> candidate list * int
(** [candidates state qi] returns the unselected finite-cost classifiers
    contained in query [qi] that cover at least one residual property,
    together with the residual target bitmask.  Selected classifiers
    never appear (their properties are already out of the residual). *)

val cheapest_cover : Cover.t -> ?allowed:(int -> bool) -> int -> (float * int list) option
(** Minimum-cost set of new classifiers completing query [qi]'s cover,
    by exact DP over residual bitmasks.  [None] if the query is
    uncoverable (or already covered — there is nothing to buy). *)

val one_covers : candidate list -> target:int -> candidate list
(** Candidates that cover the whole residual alone — residual 1-covers
    (Section 4.2). *)

val two_covers : candidate list -> target:int -> (candidate * candidate) list
(** Pairs covering the residual together with neither side sufficient
    alone — residual 2-covers. *)
