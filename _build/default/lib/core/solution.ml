type t = { classifiers : Propset.t list; cost : float; utility : float }

let empty = { classifiers = []; cost = 0.0; utility = 0.0 }

let of_sets inst sets =
  let sets =
    List.sort_uniq Propset.compare
      (List.filter (fun c -> Instance.classifier_id inst c <> None) sets)
  in
  let cost = List.fold_left (fun acc c -> acc +. Instance.cost_of inst c) 0.0 sets in
  { classifiers = sets; cost; utility = Cover.utility_of_selection inst sets }

let of_ids inst ids =
  of_sets inst (List.map (fun id -> Instance.classifier inst id) ids)

let feasible inst t = t.cost <= Instance.budget inst +. 1e-6

let verify inst t =
  let fresh = of_sets inst t.classifiers in
  feasible inst t
  && abs_float (fresh.cost -. t.cost) < 1e-6
  && abs_float (fresh.utility -. t.utility) < 1e-6
  && List.length fresh.classifiers = List.length (List.sort_uniq Propset.compare t.classifiers)

let better a b =
  if a.utility > b.utility +. 1e-12 then a
  else if b.utility > a.utility +. 1e-12 then b
  else if a.cost <= b.cost then a
  else b

let pp ?names fmt t =
  Format.fprintf fmt "@[<v>cost=%g utility=%g classifiers={" t.cost t.utility;
  List.iteri
    (fun i c ->
      if i > 0 then Format.fprintf fmt ", ";
      Propset.pp ?names fmt c)
    t.classifiers;
  Format.fprintf fmt "}@]"
