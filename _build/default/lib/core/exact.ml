let solve ?(max_classifiers = 26) inst =
  let n = Instance.num_classifiers inst in
  if n > max_classifiers then invalid_arg "Exact.solve: too many classifiers";
  let budget = Instance.budget inst in
  let total = Instance.total_utility inst in
  let best_utility = ref (-1.0) in
  let best_ids = ref [] in
  let best_cost = ref infinity in
  let rec go id state =
    let covered = Cover.covered_utility state in
    let spent = Cover.spent state in
    if
      covered > !best_utility +. 1e-12
      || (covered > !best_utility -. 1e-12 && spent < !best_cost -. 1e-12)
    then begin
      best_utility := covered;
      best_cost := spent;
      best_ids := Cover.selected state
    end;
    if id < n && covered +. (total -. covered) > !best_utility +. 1e-12 then begin
      (* The bound [total] is loose but sound; tight enough for test
         sizes. *)
      if Instance.cost inst id <= budget -. spent +. 1e-12 then begin
        let state' = Cover.clone state in
        Cover.select state' id;
        go (id + 1) state'
      end;
      go (id + 1) state
    end
  in
  go 0 (Cover.create inst);
  Solution.of_ids inst !best_ids
