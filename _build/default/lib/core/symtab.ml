type t = { ids : (string, int) Hashtbl.t; mutable names : string array; mutable size : int }

let create () = { ids = Hashtbl.create 256; names = Array.make 16 ""; size = 0 }

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
      let id = t.size in
      if id >= Array.length t.names then begin
        let grown = Array.make (2 * Array.length t.names) "" in
        Array.blit t.names 0 grown 0 id;
        t.names <- grown
      end;
      t.names.(id) <- s;
      t.size <- id + 1;
      Hashtbl.add t.ids s id;
      id

let find t s = Hashtbl.find_opt t.ids s

let name t id =
  if id < 0 || id >= t.size then invalid_arg "Symtab.name: unknown id";
  t.names.(id)

let size t = t.size
