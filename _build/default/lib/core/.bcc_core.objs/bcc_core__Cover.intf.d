lib/core/cover.mli: Instance Propset
