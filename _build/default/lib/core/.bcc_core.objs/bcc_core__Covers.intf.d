lib/core/covers.mli: Cover
