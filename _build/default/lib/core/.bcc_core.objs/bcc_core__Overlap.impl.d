lib/core/overlap.ml: Array Cover Hashtbl Instance List Propset Solution Solver
