lib/core/propset.ml: Array Format Hashtbl List Stdlib Symtab
