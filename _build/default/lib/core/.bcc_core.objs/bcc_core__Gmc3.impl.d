lib/core/gmc3.ml: Array Bcc_setcover Cover Instance List Logs Propset Solution Solver
