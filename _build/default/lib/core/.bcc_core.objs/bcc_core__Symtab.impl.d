lib/core/symtab.ml: Array Hashtbl
