lib/core/instance.mli: Format Propset Symtab
