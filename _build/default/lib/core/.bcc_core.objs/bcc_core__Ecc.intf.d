lib/core/ecc.mli: Instance Solution
