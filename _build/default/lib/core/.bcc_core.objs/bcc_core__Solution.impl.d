lib/core/solution.ml: Cover Format Instance List Propset
