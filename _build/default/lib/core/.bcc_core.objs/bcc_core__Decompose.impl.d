lib/core/decompose.ml: Array Bcc_graph Bcc_qk Cover Covers Hashtbl Instance List
