lib/core/partial.mli: Cover Instance Propset Solution
