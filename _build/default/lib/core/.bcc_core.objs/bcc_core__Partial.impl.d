lib/core/partial.ml: Array Bcc_util Cover Instance List Propset Solution Solver
