lib/core/solution.mli: Format Instance Propset Symtab
