lib/core/ecc.ml: Array Bcc_dks Bcc_graph Instance List Propset Solution
