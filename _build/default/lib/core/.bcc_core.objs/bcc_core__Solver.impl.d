lib/core/solver.ml: Array Baselines Bcc_knapsack Bcc_qk Bcc_setcover Bcc_util Cover Covers Decompose Hashtbl Instance List Logs Propset Prune Solution
