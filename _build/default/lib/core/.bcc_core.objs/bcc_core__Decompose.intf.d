lib/core/decompose.mli: Bcc_graph Bcc_qk Cover
