lib/core/cover.ml: Array Instance List Propset
