lib/core/exact.mli: Instance Solution
