lib/core/propset.mli: Format Hashtbl Symtab
