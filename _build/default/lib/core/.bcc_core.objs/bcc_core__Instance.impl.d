lib/core/instance.ml: Array Format Hashtbl List Propset Symtab
