lib/core/solver.mli: Bcc_qk Instance Prune Solution
