lib/core/covers.ml: Array Cover Instance List Propset
