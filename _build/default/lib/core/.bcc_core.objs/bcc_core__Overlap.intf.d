lib/core/overlap.mli: Instance Solution
