lib/core/prune.mli: Instance
