lib/core/prune.ml: Array Cover Covers Instance List Propset
