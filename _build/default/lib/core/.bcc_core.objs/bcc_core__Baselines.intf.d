lib/core/baselines.mli: Instance Solution
