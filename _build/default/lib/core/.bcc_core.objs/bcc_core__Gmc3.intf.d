lib/core/gmc3.mli: Instance Solution Solver
