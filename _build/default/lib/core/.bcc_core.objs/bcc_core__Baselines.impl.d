lib/core/baselines.ml: Array Bcc_util Cover Covers Hashtbl Instance List Propset Solution
