lib/core/exact.ml: Cover Instance Solution
