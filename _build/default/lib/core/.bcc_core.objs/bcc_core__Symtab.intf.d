lib/core/symtab.mli:
