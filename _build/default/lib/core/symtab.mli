(** Property interning: bidirectional string <-> int table.

    Properties ("wooden", "table", ...) are referenced everywhere by
    dense integer ids; this table assigns ids and remembers the names
    for pretty-printing. *)

type t

val create : unit -> t
val intern : t -> string -> int
(** Id of the name, allocating a fresh one on first sight. *)

val find : t -> string -> int option
val name : t -> int -> string
(** @raise Invalid_argument on an unknown id. *)

val size : t -> int
