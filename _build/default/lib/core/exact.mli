(** Exhaustive BCC solver — branch and bound over classifier subsets.

    The test oracle and the "brute force (with pruning)" comparator of
    the paper's Figure 3d experiment.  Exponential in the number of
    classifiers; guarded by [max_classifiers]. *)

val solve : ?max_classifiers:int -> Instance.t -> Solution.t
(** @raise Invalid_argument when the instance has more than
    [max_classifiers] (default 26) finite-cost classifiers. *)
