(** Property sets — the common currency of queries and classifiers.

    A query {e is} its set of properties, and so is a classifier
    (Section 2.1: [Q ⊆ 2^P], [CL ⊆ 2^P]).  Sets are stored as sorted,
    duplicate-free int arrays; query length is bounded (the paper caps
    it at 6), so all per-set operations are effectively constant
    time. *)

type t

val empty : t
val singleton : int -> t
val of_list : int list -> t
(** Sorts and deduplicates. *)

val of_array : int array -> t
val to_list : t -> int list
val to_array : t -> int array
(** Fresh array, ascending. *)

val length : t -> int
val is_empty : t -> bool
val mem : int -> t -> bool
val subset : t -> t -> bool
(** [subset a b]: is [a ⊆ b]? *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val union : t -> t -> t
val inter : t -> t -> t
val diff : t -> t -> t
val iter : (int -> unit) -> t -> unit
val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val subsets : t -> t list
(** All non-empty subsets — the relevant classifiers [CL_q] of a query
    (Section 2.1).  @raise Invalid_argument above 16 properties. *)

val strict_subsets : t -> t list
(** {!subsets} minus the set itself. *)

val positions_in : t -> t -> int
(** [positions_in c q] = bitmask over [q]'s sorted positions marking
    where [c]'s members sit; members of [c] outside [q] are ignored.
    Used by the incremental cover tracker. *)

val pp : ?names:Symtab.t -> Format.formatter -> t -> unit
val to_string : ?names:Symtab.t -> t -> string

module Tbl : Hashtbl.S with type key = t
