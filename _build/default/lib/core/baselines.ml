module Heap = Bcc_util.Heap
module Rng = Bcc_util.Rng

type stop = Budget | Target of float | Best_ratio

(* Shared run loop: [step state remaining] proposes the next classifier
   ids to select (empty list = stuck).  Tracks the best-ratio prefix for
   the ECC variant. *)
let run inst stop step =
  let state = Cover.create inst in
  let budget = match stop with Budget -> Instance.budget inst | _ -> infinity in
  let best_ratio = ref 0.0 in
  let best_prefix = ref [] in
  let continue_ = ref true in
  while !continue_ do
    (match stop with
    | Target target when Cover.covered_utility state >= target -> continue_ := false
    | Best_ratio when Cover.covered_count state = Instance.num_queries inst ->
        continue_ := false
    | _ -> ());
    if !continue_ then begin
      let remaining = budget -. Cover.spent state in
      match step state remaining with
      | [] -> continue_ := false
      | ids ->
          List.iter (fun id -> Cover.select state id) ids;
          if stop = Best_ratio then begin
            let spent = Cover.spent state in
            let covered = Cover.covered_utility state in
            let ratio =
              if spent > 1e-12 then covered /. spent
              else if covered > 0.0 then infinity
              else 0.0
            in
            if ratio > !best_ratio then begin
              best_ratio := ratio;
              best_prefix := Cover.selected state
            end
          end
    end
  done;
  let ids = match stop with Best_ratio -> !best_prefix | _ -> Cover.selected state in
  Solution.of_ids inst ids

let rand ?(seed = 42) inst stop =
  let rng = Rng.create seed in
  let n = Instance.num_classifiers inst in
  (* Mutable pool: pick a random index; classifiers that no longer fit
     are swapped out permanently. *)
  let pool = Array.init n (fun i -> i) in
  let pool_size = ref n in
  let remove_at i =
    decr pool_size;
    pool.(i) <- pool.(!pool_size)
  in
  let step state remaining =
    let rec try_pick attempts =
      if !pool_size = 0 || attempts > 4 * n then []
      else begin
        let i = Rng.int rng !pool_size in
        let id = pool.(i) in
        if Cover.is_selected state id then begin
          remove_at i;
          try_pick attempts
        end
        else if Instance.cost inst id > remaining then begin
          remove_at i;
          try_pick (attempts + 1)
        end
        else begin
          remove_at i;
          [ id ]
        end
      end
    in
    try_pick 0
  in
  run inst stop step

let ig2 inst stop =
  let n = Instance.num_classifiers inst in
  (* sums.(c) = total utility of uncovered queries containing c. *)
  let sums = Array.make n 0.0 in
  for id = 0 to n - 1 do
    Array.iter
      (fun qi -> sums.(id) <- sums.(id) +. Instance.utility inst qi)
      (Instance.queries_containing inst id)
  done;
  let ratio id =
    let c = Instance.cost inst id in
    if c <= 1e-12 then if sums.(id) > 0.0 then infinity else 0.0
    else sums.(id) /. c
  in
  let heap = Heap.create ~max:true n in
  for id = 0 to n - 1 do
    Heap.insert heap id (ratio id)
  done;
  let step state remaining =
    let rec pick () =
      match Heap.pop heap with
      | None -> []
      | Some (id, _) ->
          if Cover.is_selected state id then pick ()
          else if Instance.cost inst id > remaining then pick () (* never fits again *)
          else if ratio id <= 0.0 then []
          else begin
            let newly = Cover.select_traced state id in
            (* Covered queries leave the sums of every classifier they
               contain. *)
            List.iter
              (fun qi ->
                let u = Instance.utility inst qi in
                List.iter
                  (fun c ->
                    match Instance.classifier_id inst c with
                    | Some cid ->
                        sums.(cid) <- sums.(cid) -. u;
                        if Heap.mem heap cid then Heap.update heap cid (ratio cid)
                    | None -> ())
                  (Propset.subsets (Instance.query inst qi)))
              newly;
            [ id ] (* already selected; run loop's select is idempotent *)
          end
    in
    pick ()
  in
  run inst stop step

let ig1 inst stop =
  let nq = Instance.num_queries inst in
  (* Per uncovered query: cheapest completing cover and its ratio. *)
  let state_ref = ref None in
  let heap = Heap.create ~max:true nq in
  let refresh state qi =
    if Cover.is_covered state qi then ignore (Heap.remove heap qi)
    else begin
      match Covers.cheapest_cover state qi with
      | None -> ignore (Heap.remove heap qi)
      | Some (cost, _) ->
          let u = Instance.utility inst qi in
          let r = if cost <= 1e-12 then infinity else u /. cost in
          Heap.update heap qi r
    end
  in
  let step state remaining =
    (match !state_ref with
    | None ->
        state_ref := Some state;
        for qi = 0 to nq - 1 do
          refresh state qi
        done
    | Some _ -> ());
    (* Pop the best query whose cheapest cover fits; parked queries are
       re-inserted after a successful selection (their covers may get
       cheaper later). *)
    let parked = ref [] in
    let rec pick () =
      match Heap.pop heap with
      | None -> []
      | Some (qi, r) ->
          if Cover.is_covered state qi then pick ()
          else begin
            match Covers.cheapest_cover state qi with
            | None -> pick ()
            | Some (cost, ids) ->
                if cost > remaining then begin
                  parked := (qi, r) :: !parked;
                  pick ()
                end
                else ids
          end
    in
    let result = pick () in
    List.iter (fun (qi, r) -> if not (Heap.mem heap qi) then Heap.insert heap qi r) !parked;
    (match result with
    | [] -> ()
    | ids ->
        (* Selecting these classifiers can cheapen covers of any query
           containing one of them; refresh those (and drop covered). *)
        let state' = state in
        List.iter (fun id -> Cover.select state' id) ids;
        let affected = Hashtbl.create 16 in
        List.iter
          (fun id ->
            Array.iter
              (fun qi -> Hashtbl.replace affected qi ())
              (Instance.queries_containing inst id))
          ids;
        Hashtbl.iter (fun qi () -> refresh state' qi) affected);
    result
  in
  run inst stop step
