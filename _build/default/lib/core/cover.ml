type t = {
  inst : Instance.t;
  mask : int array; (* per query: bitmask over its sorted positions *)
  full : int array;
  selected : bool array; (* per classifier id *)
  mutable covered_utility : float;
  mutable covered_count : int;
  mutable spent : float;
  mutable n_selected : int;
}

let create inst =
  let nq = Instance.num_queries inst in
  {
    inst;
    mask = Array.make (max nq 1) 0;
    full = Array.init (max nq 1) (fun i ->
        if i < nq then (1 lsl Propset.length (Instance.query inst i)) - 1 else 0);
    selected = Array.make (max (Instance.num_classifiers inst) 1) false;
    covered_utility = 0.0;
    covered_count = 0;
    spent = 0.0;
    n_selected = 0;
  }

let clone t =
  {
    t with
    mask = Array.copy t.mask;
    full = t.full;
    selected = Array.copy t.selected;
  }

let instance t = t.inst
let is_selected t id = t.selected.(id)

let select_traced t id =
  if t.selected.(id) then []
  else begin
    t.selected.(id) <- true;
    t.n_selected <- t.n_selected + 1;
    t.spent <- t.spent +. Instance.cost t.inst id;
    let c = Instance.classifier t.inst id in
    let newly = ref [] in
    Array.iter
      (fun qi ->
        if t.mask.(qi) <> t.full.(qi) then begin
          let bits = Propset.positions_in c (Instance.query t.inst qi) in
          t.mask.(qi) <- t.mask.(qi) lor bits;
          if t.mask.(qi) = t.full.(qi) then begin
            t.covered_utility <- t.covered_utility +. Instance.utility t.inst qi;
            t.covered_count <- t.covered_count + 1;
            newly := qi :: !newly
          end
        end)
      (Instance.queries_containing t.inst id);
    List.rev !newly
  end

let select t id = ignore (select_traced t id)

let select_set t c =
  match Instance.classifier_id t.inst c with
  | Some id ->
      select t id;
      true
  | None -> false

let selected t =
  let out = ref [] in
  for id = Array.length t.selected - 1 downto 0 do
    if t.selected.(id) then out := id :: !out
  done;
  !out

let spent t = t.spent
let is_covered t qi = t.mask.(qi) = t.full.(qi)
let mask t qi = t.mask.(qi)
let full_mask t qi = t.full.(qi)

let residual t qi =
  let q = Instance.query t.inst qi in
  let keep = ref [] in
  let mask = t.mask.(qi) in
  let i = ref 0 in
  Propset.iter
    (fun p ->
      if mask land (1 lsl !i) = 0 then keep := p :: !keep;
      incr i)
    q;
  Propset.of_list !keep

let covered_utility t = t.covered_utility
let covered_count t = t.covered_count

let covered_queries t =
  let out = ref [] in
  for qi = Instance.num_queries t.inst - 1 downto 0 do
    if is_covered t qi then out := qi :: !out
  done;
  !out

let uncovered_queries t =
  let out = ref [] in
  for qi = Instance.num_queries t.inst - 1 downto 0 do
    if not (is_covered t qi) then out := qi :: !out
  done;
  !out

let utility_of_selection inst sets =
  let state = create inst in
  List.iter (fun c -> ignore (select_set state c)) sets;
  covered_utility state
