(** A BCC problem instance ⟨Q, U, C, B⟩ (Section 2.1).

    Queries are property sets with utilities; the classifier universe
    [CL] is derived as the union of the (non-empty) power sets of all
    queries, with costs supplied by a cost oracle at construction time.
    Classifiers the oracle prices at [infinity] are "impractical to
    construct" and are omitted from the universe (as in Example 2.1's
    [C(XY) = ∞]).

    The instance also materializes the containment index — for every
    classifier, which queries contain it — which every solver and
    baseline in this library relies on. *)

type t

val create :
  ?name:string ->
  ?names:Symtab.t ->
  budget:float ->
  queries:(Propset.t * float) array ->
  cost:(Propset.t -> float) ->
  unit ->
  t
(** Duplicate queries are merged (utilities summed); empty queries are
    dropped.  @raise Invalid_argument on a negative utility, negative
    cost or negative budget. *)

val name : t -> string
val names : t -> Symtab.t option
val budget : t -> float
val with_budget : t -> float -> t
(** Same instance under a different budget (O(1), structure shared). *)

(** {1 Queries} *)

val num_queries : t -> int
val query : t -> int -> Propset.t
val utility : t -> int -> float
val total_utility : t -> float
val max_length : t -> int
(** The length parameter [l]. *)

val num_properties : t -> int
(** [n = |P|], the number of distinct properties. *)

(** {1 Classifiers} *)

val num_classifiers : t -> int
val classifier : t -> int -> Propset.t
val cost : t -> int -> float
val classifier_id : t -> Propset.t -> int option
val cost_of : t -> Propset.t -> float
(** [infinity] when the classifier is not in the universe. *)

val queries_containing : t -> int -> int array
(** Query ids whose property set contains the classifier — the
    classifiers relevant to covering those queries. *)

(** {1 Derived instances} *)

val restrict : t -> int list -> t
(** Sub-instance on the given query ids (deduplicated); classifier
    costs are inherited.  Used for residual problems, GMC3 iterations
    and brute-force comparisons on sub-domains. *)

val pp_summary : Format.formatter -> t -> unit
