(** Partial-cover utilities — the first future-work extension of
    Section 8 ("generalizing our model to account for utility in partial
    covers of queries").

    The base model pays a query's utility only on an exact cover,
    because partially conforming results can hurt satisfaction [31].
    This extension interpolates: a {!credit} function maps the covered
    fraction [f] of a query's properties to a share of its utility.

    - [Strict] — the paper's all-or-nothing semantics (credit = utility
      iff [f = 1]); the extension then coincides with plain BCC.
    - [Linear alpha] — a partially covered query yields
      [alpha * f * utility] (full utility at [f = 1]); [alpha] below 1
      encodes that partial conformance is worth less than its fraction.
    - [Threshold theta] — full utility once [f >= theta], nothing below
      (e.g. "covering 2 of 3 filters is already useful").

    With a concave credit the objective is monotone submodular, so the
    cost-ratio greedy of {!solve} (with the best-single-pick fallback)
    carries the classic [(1 - 1/e)/2]-style guarantee; for [Threshold]
    it is a heuristic. *)

type credit =
  | Strict
  | Linear of float
  | Threshold of float

val credit_value : credit -> utility:float -> covered:int -> length:int -> float
(** Credited utility of one query given how many of its properties are
    covered.  @raise Invalid_argument on a [Linear] factor or
    [Threshold] outside [0, 1]. *)

val credited_utility : credit -> Cover.t -> float
(** Total credited utility of a cover state. *)

val credited_of : credit -> Instance.t -> Propset.t list -> float
(** From-scratch oracle for a classifier list. *)

type result = { solution : Solution.t; credited : float }

val solve : ?credit:credit -> Instance.t -> result
(** Budget-capped greedy by marginal credited utility per cost (exact
    incremental gain maintenance), compared against the best single
    classifier and — because partial credit only adds to strict
    coverage — against the plain {!Solver.solve} output; the best
    credited result wins.  [credit] defaults to [Linear 0.5]. *)
