type t = {
  name : string;
  names : Symtab.t option;
  budget : float;
  queries : Propset.t array;
  utilities : float array;
  classifiers : Propset.t array;
  costs : float array;
  ids : int Propset.Tbl.t; (* classifier set -> id; -1 marks infinite cost *)
  containing : int array array; (* classifier id -> query ids containing it *)
  num_properties : int;
  max_length : int;
}

let create ?(name = "bcc") ?names ~budget ~queries ~cost () =
  if budget < 0.0 then invalid_arg "Instance.create: negative budget";
  (* Merge duplicate queries (utilities add up), drop empty ones. *)
  let merged = Propset.Tbl.create (max (Array.length queries) 16) in
  Array.iter
    (fun (q, u) ->
      if u < 0.0 then invalid_arg "Instance.create: negative utility";
      if not (Propset.is_empty q) then begin
        let prev = try Propset.Tbl.find merged q with Not_found -> 0.0 in
        Propset.Tbl.replace merged q (prev +. u)
      end)
    queries;
  let qlist = Propset.Tbl.fold (fun q u acc -> (q, u) :: acc) merged [] in
  let qlist = List.sort (fun (a, _) (b, _) -> Propset.compare a b) qlist in
  let queries = Array.of_list (List.map fst qlist) in
  let utilities = Array.of_list (List.map snd qlist) in
  (* CL = union of the queries' power sets; infinite-cost classifiers are
     excluded from the universe but remembered (id -1) so the oracle is
     consulted only once per set. *)
  let ids = Propset.Tbl.create (4 * max (Array.length queries) 16) in
  let rev_entries = ref [] in
  let next_id = ref 0 in
  let containing_tbl : (int, int list ref) Hashtbl.t =
    Hashtbl.create (4 * max (Array.length queries) 16)
  in
  Array.iteri
    (fun qi q ->
      List.iter
        (fun c ->
          let id =
            match Propset.Tbl.find_opt ids c with
            | Some id -> id
            | None ->
                let cl_cost = cost c in
                if cl_cost < 0.0 then invalid_arg "Instance.create: negative cost";
                if cl_cost = infinity then begin
                  Propset.Tbl.add ids c (-1);
                  -1
                end
                else begin
                  let id = !next_id in
                  incr next_id;
                  Propset.Tbl.add ids c id;
                  rev_entries := (c, cl_cost) :: !rev_entries;
                  Hashtbl.add containing_tbl id (ref []);
                  id
                end
          in
          if id >= 0 then begin
            let cell = Hashtbl.find containing_tbl id in
            cell := qi :: !cell
          end)
        (Propset.subsets q))
    queries;
  let n_cl = !next_id in
  let classifiers = Array.make (max n_cl 1) Propset.empty in
  let costs = Array.make (max n_cl 1) 0.0 in
  List.iteri
    (fun i (c, cl_cost) ->
      classifiers.(n_cl - 1 - i) <- c;
      costs.(n_cl - 1 - i) <- cl_cost)
    !rev_entries;
  let containing =
    Array.init n_cl (fun id ->
        match Hashtbl.find_opt containing_tbl id with
        | Some cell -> Array.of_list (List.rev !cell)
        | None -> [||])
  in
  let props = Hashtbl.create 256 in
  Array.iter (fun q -> Propset.iter (fun p -> Hashtbl.replace props p ()) q) queries;
  let max_length = Array.fold_left (fun acc q -> max acc (Propset.length q)) 0 queries in
  {
    name;
    names;
    budget;
    queries;
    utilities;
    classifiers = (if n_cl = 0 then [||] else Array.sub classifiers 0 n_cl);
    costs = (if n_cl = 0 then [||] else Array.sub costs 0 n_cl);
    ids;
    containing;
    num_properties = Hashtbl.length props;
    max_length;
  }

let name t = t.name
let names t = t.names
let budget t = t.budget
let with_budget t budget = { t with budget }
let num_queries t = Array.length t.queries
let query t i = t.queries.(i)
let utility t i = t.utilities.(i)
let total_utility t = Array.fold_left ( +. ) 0.0 t.utilities
let max_length t = t.max_length
let num_properties t = t.num_properties
let num_classifiers t = Array.length t.classifiers
let classifier t i = t.classifiers.(i)
let cost t i = t.costs.(i)

let classifier_id t c =
  match Propset.Tbl.find_opt t.ids c with Some id when id >= 0 -> Some id | _ -> None

let cost_of t c = match classifier_id t c with Some id -> t.costs.(id) | None -> infinity
let queries_containing t id = t.containing.(id)

let restrict t qids =
  let qids = List.sort_uniq compare qids in
  let queries =
    Array.of_list (List.map (fun qi -> (t.queries.(qi), t.utilities.(qi))) qids)
  in
  create ~name:t.name ?names:t.names ~budget:t.budget ~queries
    ~cost:(fun c -> cost_of t c)
    ()

let pp_summary fmt t =
  Format.fprintf fmt
    "instance %s: %d queries, %d properties, %d classifiers, l=%d, budget=%g, total utility=%g"
    t.name (num_queries t) t.num_properties (num_classifiers t) t.max_length t.budget
    (total_utility t)
