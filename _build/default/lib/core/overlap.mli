(** Overlapping construction costs — the second future-work extension of
    Section 8 ("generalizing the cost function to capture overlaps in
    classifier construction").

    The base model charges classifiers independently, although in
    practice classifiers testing shared properties can share labelled
    training data (Section 2.1's discussion).  This extension models
    that: a classifier's base cost is spread evenly over its property
    slots, and when several selected classifiers test the same property,
    every occurrence except the most expensive one is discounted by a
    factor [beta] (the shared-data saving).

    Formally, for a selection [S] and property [p], let
    [occ(p) = { c in S | p in c }] and [share(c) = base(c) / |c|]; then

    [cost_beta(S) = sum over p of (max share over occ(p))
                    + (1 - beta) * (sum of the remaining shares)]

    With [beta = 0] this is exactly the paper's independent-sum cost;
    the marginal cost of a classifier never increases as [S] grows, so
    the budget-capped ratio greedy below is a natural heuristic. *)

val set_cost : ?beta:float -> Instance.t -> int list -> float
(** Overlap-discounted cost of a classifier-id selection.  [beta]
    defaults to 0.3.  @raise Invalid_argument if [beta] is outside
    [0, 1]. *)

val marginal_cost : ?beta:float -> Instance.t -> selected:int list -> int -> float
(** Additional overlap-discounted cost of adding one classifier. *)

type result = { solution : Solution.t; overlap_cost : float }
(** [solution.cost] remains the independent-sum cost; [overlap_cost] is
    the discounted cost actually charged against the budget. *)

val solve : ?beta:float -> Instance.t -> result
(** Overlap-aware budget-capped greedy (marginal utility over marginal
    discounted cost), compared against plain {!Solver.solve} re-priced
    under the overlap model (independent-cost solutions only get cheaper,
    so they stay feasible); the higher-utility feasible result wins. *)
