type t = int array

let empty : t = [||]
let singleton p = [| p |]

let of_list ps = Array.of_list (List.sort_uniq Stdlib.compare ps)
let of_array ps = of_list (Array.to_list ps)
let to_list (t : t) = Array.to_list t
let to_array (t : t) = Array.copy t
let length = Array.length
let is_empty t = length t = 0

let mem p (t : t) =
  let rec go lo hi =
    if lo > hi then false
    else begin
      let mid = (lo + hi) / 2 in
      if t.(mid) = p then true else if t.(mid) < p then go (mid + 1) hi else go lo (mid - 1)
    end
  in
  go 0 (length t - 1)

let subset (a : t) (b : t) =
  let na = length a and nb = length b in
  let rec go i j =
    if i >= na then true
    else if j >= nb then false
    else if a.(i) = b.(j) then go (i + 1) (j + 1)
    else if a.(i) > b.(j) then go i (j + 1)
    else false
  in
  go 0 0

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b
let hash (t : t) = Hashtbl.hash t

let union (a : t) (b : t) =
  let na = length a and nb = length b in
  let out = Array.make (na + nb) 0 in
  let rec go i j k =
    if i >= na && j >= nb then k
    else if j >= nb || (i < na && a.(i) < b.(j)) then begin
      out.(k) <- a.(i);
      go (i + 1) j (k + 1)
    end
    else if i >= na || b.(j) < a.(i) then begin
      out.(k) <- b.(j);
      go i (j + 1) (k + 1)
    end
    else begin
      out.(k) <- a.(i);
      go (i + 1) (j + 1) (k + 1)
    end
  in
  let k = go 0 0 0 in
  Array.sub out 0 k

let inter (a : t) (b : t) =
  let na = length a and nb = length b in
  let out = Array.make (min na nb) 0 in
  let rec go i j k =
    if i >= na || j >= nb then k
    else if a.(i) = b.(j) then begin
      out.(k) <- a.(i);
      go (i + 1) (j + 1) (k + 1)
    end
    else if a.(i) < b.(j) then go (i + 1) j k
    else go i (j + 1) k
  in
  let k = go 0 0 0 in
  Array.sub out 0 k

let diff (a : t) (b : t) =
  let na = length a in
  let out = Array.make na 0 in
  let k = ref 0 in
  for i = 0 to na - 1 do
    if not (mem a.(i) b) then begin
      out.(!k) <- a.(i);
      incr k
    end
  done;
  Array.sub out 0 !k

let iter f (t : t) = Array.iter f t
let fold f init (t : t) = Array.fold_left f init t

let subset_of_mask (t : t) mask =
  let n = length t in
  let out = Array.make n 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if mask land (1 lsl i) <> 0 then begin
      out.(!k) <- t.(i);
      incr k
    end
  done;
  (Array.sub out 0 !k : t)

let subsets t =
  let n = length t in
  if n > 16 then invalid_arg "Propset.subsets: set too large";
  let out = ref [] in
  for mask = (1 lsl n) - 1 downto 1 do
    out := subset_of_mask t mask :: !out
  done;
  !out

let strict_subsets t =
  let n = length t in
  if n > 16 then invalid_arg "Propset.strict_subsets: set too large";
  let out = ref [] in
  for mask = (1 lsl n) - 2 downto 1 do
    out := subset_of_mask t mask :: !out
  done;
  !out

let positions_in (c : t) (q : t) =
  let nq = length q in
  let mask = ref 0 in
  iter
    (fun p ->
      let rec go lo hi =
        if lo > hi then ()
        else begin
          let mid = (lo + hi) / 2 in
          if q.(mid) = p then mask := !mask lor (1 lsl mid)
          else if q.(mid) < p then go (mid + 1) hi
          else go lo (mid - 1)
        end
      in
      go 0 (nq - 1))
    c;
  !mask

let pp ?names fmt (t : t) =
  Format.fprintf fmt "{";
  Array.iteri
    (fun i p ->
      if i > 0 then Format.fprintf fmt ", ";
      match names with
      | Some tbl -> Format.fprintf fmt "%s" (Symtab.name tbl p)
      | None -> Format.fprintf fmt "%d" p)
    t;
  Format.fprintf fmt "}"

let to_string ?names t = Format.asprintf "%a" (pp ?names) t

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
