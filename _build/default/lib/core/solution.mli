(** BCC solutions: a classifier set with its recomputed cost and the
    utility of the queries it covers. *)

type t = {
  classifiers : Propset.t list;  (** the selected classifier sets *)
  cost : float;
  utility : float;
}

val of_ids : Instance.t -> int list -> t
(** Build from classifier ids, recomputing cost and utility from
    scratch. *)

val of_sets : Instance.t -> Propset.t list -> t
(** Build from property sets; sets outside the instance's classifier
    universe are dropped. *)

val feasible : Instance.t -> t -> bool
(** Within budget (up to a 1e-6 tolerance). *)

val verify : Instance.t -> t -> bool
(** Recompute cost and utility from scratch and compare; also checks
    feasibility.  Every test asserts this on every solver output. *)

val empty : t
val better : t -> t -> t
(** Higher utility wins; ties go to lower cost. *)

val pp : ?names:Symtab.t -> Format.formatter -> t -> unit
