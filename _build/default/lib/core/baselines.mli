(** The evaluation baselines of Section 6.1.

    - {b RAND} picks, each iteration, a uniformly random classifier that
      still fits (the pool drops classifiers permanently once they stop
      fitting).
    - {b IG1} computes, per uncovered query, the least costly set of new
      classifiers completing its cover (exact bitmask DP over the O(1)
      relevant sets) and selects the set maximizing query utility over
      that cost.
    - {b IG2} selects one classifier per iteration, maximizing the sum
      of utilities of the uncovered queries containing it divided by its
      cost — the adaptation of the greedy Set Cover MC3 algorithm.

    A {!stop} mode turns each of them into its GMC3 ((G): reach a
    utility target, ignore the budget) or ECC ((E): cover everything,
    return the best-ratio prefix) variant from Section 6.3. *)

type stop =
  | Budget  (** respect the instance budget (BCC evaluation) *)
  | Target of float  (** stop once covered utility reaches the target *)
  | Best_ratio  (** run to full coverage, return the best utility/cost prefix *)

val rand : ?seed:int -> Instance.t -> stop -> Solution.t
val ig1 : Instance.t -> stop -> Solution.t
val ig2 : Instance.t -> stop -> Solution.t
