type candidate = { id : int; bits : int }

let candidates state ?(allowed = fun _ -> true) qi =
  let inst = Cover.instance state in
  let q = Instance.query inst qi in
  let residual = Cover.residual state qi in
  let target = Propset.positions_in residual q in
  if target = 0 then ([], 0)
  else begin
    let out = ref [] in
    List.iter
      (fun c ->
        match Instance.classifier_id inst c with
        | Some id when (not (Cover.is_selected state id)) && allowed id ->
            let bits = Propset.positions_in c q land target in
            if bits <> 0 then out := { id; bits } :: !out
        | _ -> ())
      (Propset.subsets q);
    (!out, target)
  end

let cheapest_cover state ?allowed qi =
  let inst = Cover.instance state in
  let cands, target = candidates state ?allowed qi in
  if target = 0 then None
  else begin
    let size = target + 1 in
    let dp = Array.make size infinity in
    let parent = Array.make size (-1, -1) in
    dp.(0) <- 0.0;
    let cands = Array.of_list cands in
    (* dp over submasks of [target]: because each transition ORs bits in,
       filling masks in ascending order with per-candidate relaxation
       from [m land lnot bits] is exact. *)
    for m = 1 to target do
      if m land target = m then
        Array.iteri
          (fun ci { id; bits } ->
            if bits land m <> 0 then begin
              let prev = m land lnot bits land target in
              if dp.(prev) < infinity then begin
                let c = dp.(prev) +. Instance.cost inst id in
                if c < dp.(m) then begin
                  dp.(m) <- c;
                  parent.(m) <- (ci, prev)
                end
              end
            end)
          cands
    done;
    if dp.(target) = infinity then None
    else begin
      let ids = ref [] in
      let m = ref target in
      while !m <> 0 do
        let ci, prev = parent.(!m) in
        ids := cands.(ci).id :: !ids;
        m := prev
      done;
      Some (dp.(target), List.sort_uniq compare !ids)
    end
  end

let one_covers cands ~target =
  List.filter (fun { bits; _ } -> bits land target = target) cands

let two_covers cands ~target =
  let cands = Array.of_list cands in
  let n = Array.length cands in
  let out = ref [] in
  for i = 0 to n - 1 do
    if cands.(i).bits land target <> target then
      for j = i + 1 to n - 1 do
        if
          cands.(j).bits land target <> target
          && (cands.(i).bits lor cands.(j).bits) land target = target
        then out := (cands.(i), cands.(j)) :: !out
      done
  done;
  !out
