(** [A^ECC] — Effective Classifier Construction (Definition 5.2,
    Theorem 5.4): maximize the ratio of covered utility to construction
    cost.

    Following the proof of Theorem 5.4, the algorithm compares two
    candidates and returns the better ratio:

    - the densest-subgraph solution over the cover hypergraph — vertices
      are classifiers of length below the instance's [l] (weighted by
      cost, plus the zero-cost auxiliary vertex [v*] that absorbs
      singleton covers), hyperedges are minimal covers of each query
      (weighted by utility) — solved {e exactly} when every cover is a
      pair (the [l <= 2] regime, matching the theorem's PTIME claim) via
      {!Bcc_dks.Densest.exact_graph}, and with the greedy peeling of
      [35] otherwise;
    - the single classifier identical to some query with the best
      utility-to-cost ratio (the length-[l] candidate of the proof).

    Minimal covers are enumerated exhaustively up to size 3 for queries
    of length at most 4; longer queries contribute their covers of size
    at most 2 and the all-singleton cover (a documented cap — such
    queries are rare in all the paper's workloads). *)

val solve : Instance.t -> Solution.t
(** The returned utility and cost are recomputed from scratch (so the
    hypergraph's overcounting never leaks into the reported ratio). *)

val ratio_of : Solution.t -> float
(** utility / cost; [infinity] for a free solution with positive
    utility, [0] for the empty solution. *)
