let check_beta beta =
  if beta < 0.0 || beta > 1.0 then invalid_arg "Overlap: beta out of range"

let share inst id =
  Instance.cost inst id /. float_of_int (Propset.length (Instance.classifier inst id))

(* Cost of a selection under the shared-training-data discount: per
   property, the most expensive share is paid in full, the rest at
   (1 - beta). *)
let set_cost ?(beta = 0.3) inst ids =
  check_beta beta;
  let ids = List.sort_uniq compare ids in
  let by_prop : (int, float list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun id ->
      let s = share inst id in
      Propset.iter
        (fun p ->
          match Hashtbl.find_opt by_prop p with
          | Some cell -> cell := s :: !cell
          | None -> Hashtbl.add by_prop p (ref [ s ]))
        (Instance.classifier inst id))
    ids;
  Hashtbl.fold
    (fun _ cell acc ->
      match List.sort (fun a b -> compare b a) !cell with
      | [] -> acc
      | most :: rest ->
          acc +. most +. ((1.0 -. beta) *. List.fold_left ( +. ) 0.0 rest))
    by_prop 0.0

let marginal_cost ?(beta = 0.3) inst ~selected id =
  check_beta beta;
  if List.mem id selected then 0.0
  else begin
    (* Incremental: for each property of [id], the newcomer either pays
       the discounted share, or becomes the new maximum and pays full
       while the previous maximum drops to discounted. *)
    let prop_max : (int, float) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun d ->
        let s = share inst d in
        Propset.iter
          (fun p ->
            match Hashtbl.find_opt prop_max p with
            | Some m when m >= s -> ()
            | _ -> Hashtbl.replace prop_max p s)
          (Instance.classifier inst d))
      selected;
    let s = share inst id in
    Propset.fold
      (fun acc p ->
        match Hashtbl.find_opt prop_max p with
        | None -> acc +. s
        | Some m when s <= m -> acc +. ((1.0 -. beta) *. s)
        | Some m -> acc +. s -. (beta *. m))
      0.0 (Instance.classifier inst id)
  end

type result = { solution : Solution.t; overlap_cost : float }

let greedy beta inst =
  let budget = Instance.budget inst in
  let state = Cover.create inst in
  let selected = ref [] in
  let spent = ref 0.0 in
  for id = 0 to Instance.num_classifiers inst - 1 do
    if Instance.cost inst id <= 0.0 then begin
      Cover.select state id;
      selected := id :: !selected
    end
  done;
  let n = Instance.num_classifiers inst in
  (* Per-property maximum share of the current selection, maintained
     incrementally so each candidate's marginal cost is O(|c|). *)
  let prop_max : (int, float) Hashtbl.t = Hashtbl.create 64 in
  let absorb id =
    let s = share inst id in
    Propset.iter
      (fun p ->
        match Hashtbl.find_opt prop_max p with
        | Some m when m >= s -> ()
        | _ -> Hashtbl.replace prop_max p s)
      (Instance.classifier inst id)
  in
  List.iter absorb !selected;
  let quick_marginal id =
    let s = share inst id in
    Propset.fold
      (fun acc p ->
        match Hashtbl.find_opt prop_max p with
        | None -> acc +. s
        | Some m when s <= m -> acc +. ((1.0 -. beta) *. s)
        | Some m -> acc +. s -. (beta *. m))
      0.0 (Instance.classifier inst id)
  in
  let continue_ = ref true in
  while !continue_ do
    (* Full scan each iteration: marginal costs depend on the whole
       selection, and instances at this extension's scale are modest. *)
    let best = ref None in
    for id = 0 to n - 1 do
      if not (Cover.is_selected state id) then begin
        let mc = quick_marginal id in
        if mc <= budget -. !spent +. 1e-9 then begin
          (* Strict marginal gain via cover masks (no cloning). *)
          let c = Instance.classifier inst id in
          let gain =
            Array.fold_left
              (fun acc qi ->
                let full = Cover.full_mask state qi in
                let m = Cover.mask state qi in
                if m <> full then begin
                  let m' = m lor Propset.positions_in c (Instance.query inst qi) in
                  if m' = full then acc +. Instance.utility inst qi else acc
                end
                else acc)
              0.0
              (Instance.queries_containing inst id)
          in
          if gain > 1e-12 then begin
            let ratio = gain /. max mc 1e-9 in
            match !best with
            | Some (_, _, r) when r >= ratio -> ()
            | _ -> best := Some (id, mc, ratio)
          end
        end
      end
    done;
    match !best with
    | Some (id, mc, _) ->
        Cover.select state id;
        selected := id :: !selected;
        absorb id;
        spent := !spent +. mc
    | None -> continue_ := false
  done;
  (Cover.selected state, set_cost ~beta inst (Cover.selected state))

let solve ?(beta = 0.3) inst =
  check_beta beta;
  let greedy_ids, greedy_cost = greedy beta inst in
  let greedy_result =
    { solution = Solution.of_ids inst greedy_ids; overlap_cost = greedy_cost }
  in
  (* The independent-cost solver's output re-priced under the overlap
     model: costs only shrink, so feasibility is preserved. *)
  let strict = Solver.solve inst in
  let strict_ids =
    List.filter_map (fun c -> Instance.classifier_id inst c) strict.Solution.classifiers
  in
  let strict_result =
    { solution = strict; overlap_cost = set_cost ~beta inst strict_ids }
  in
  if greedy_result.solution.Solution.utility >= strict_result.solution.Solution.utility
  then greedy_result
  else strict_result
