(** [A^GMC3] — Generalized MC3 (Definition 5.1, Theorem 5.3): the
    classifier set of minimum cost whose covered utility reaches a
    target [T].

    As in the paper's implementation (Section 6.3), the naive
    "try every budget" scheme of the proof is replaced by a {e binary
    search} for the smallest budget at which [A^BCC] reaches the
    target, over a range bounded above by the MC3 full-cover cost; when
    the heuristic falls short even at the upper bound, the iterative
    residual-covering loop of Theorem 5.3 accumulates solutions until
    the target is met. *)

type result = {
  solution : Solution.t;
  reached : bool;  (** did the covered utility reach the target? *)
  budget_used : float;  (** final budget handed to the underlying [A^BCC] *)
}

val full_cover_cost : Instance.t -> float option
(** Cost of an MC3 cover of {e all} queries — the budget upper bound the
    paper derives from the solution of [23]; [None] when some query is
    uncoverable. *)

val solve :
  ?options:Solver.options -> ?search_steps:int -> Instance.t -> target:float -> result
(** [search_steps] bounds the binary search (default 10). *)
